// Deterministic fault injection through the service stack: armed failpoints
// must reproduce identical error sequences across runs, transient WAL
// failures must be retried to success by the store's command policy, and
// injected recovery/bus failures must be counted and reported — never
// silent.  The whole suite needs the failpoints compiled in
// (-DADPM_FAULT_INJECTION=ON); without them it skips.
#include <gtest/gtest.h>

#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION

#include <filesystem>
#include <string>
#include <vector>

#include "dpm/scenario.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

dpm::ScenarioSpec twoTeamScenario() {
  dpm::ScenarioSpec s;
  s.name = "two-team";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint(
      {"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"B", "b", "ben", {cap}, {y}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

dpm::Operation synth(std::uint32_t prob, const char* designer,
                     std::uint32_t pid, double v) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultRegistry::instance().reset();
    dir_ = fs::temp_directory_path() /
           ("adpm_fault_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultRegistry::instance().reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(FaultInjectionTest, SeededFaultPlanReproducesIdenticalErrorSequence) {
  // The acceptance property: the same fault plan against the same command
  // script yields the *identical* error sequence, run after run.
  const fs::path walDir = dir_ / "seq";
  auto run = [&] {
    fs::remove_all(walDir);
    util::FaultRegistry::instance().reset();
    util::FaultRegistry::instance().armFromSpec(
        "wal.append=error:every=3");

    SessionStore::Options o;
    o.executor.deterministic = true;
    o.walDir = walDir.string();
    std::vector<std::string> events;
    {
      SessionStore store{std::move(o)};
      auto attempt = [&](const char* tag, auto fn) {
        try {
          fn();
          events.push_back(std::string(tag) + ":ok");
        } catch (const adpm::Error& e) {
          events.push_back(std::string(tag) + ":" + e.what());
        }
      };
      attempt("open", [&] { store.open("s", twoTeamScenario(), true); });
      attempt("x", [&] {  // wal hit 2
        store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
      });
      attempt("y", [&] {  // wal hit 3: injected failure, op NOT applied
        store.applyOperation("s", synth(2, "ben", 2, 15.0)).get();
      });
      attempt("y2", [&] {  // wal hit 4: the re-issued command lands
        store.applyOperation("s", synth(2, "ben", 2, 15.0)).get();
      });
      attempt("snap", [&] {
        events.push_back("stage=" +
                         std::to_string(store.snapshot("s").get().stage));
      });
    }
    util::FaultRegistry::instance().reset();
    return events;
  };

  const std::vector<std::string> first = run();
  const std::vector<std::string> second = run();
  EXPECT_EQ(first, second);

  // And the sequence is the one the plan dictates: hit 3 fails, rest pass.
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first[0], "open:ok");
  EXPECT_EQ(first[1], "x:ok");
  EXPECT_NE(first[2].find("injected failure appending"), std::string::npos);
  EXPECT_EQ(first[3], "y2:ok");
  EXPECT_EQ(first[4], "stage=2");
  EXPECT_EQ(first[5], "snap:ok");
}

TEST_F(FaultInjectionTest, CommandPolicyRetriesTransientFaultsToSuccess) {
  SessionStore::Options o;
  o.executor.deterministic = true;
  o.command.maxAttempts = 3;
  o.command.backoffBase = std::chrono::microseconds(10);  // fast test
  SessionStore store{std::move(o)};
  store.open("s", twoTeamScenario(), true);

  // First two attempts hit the injected fault; the third lands.
  util::FaultRegistry::instance().armFromSpec("store.apply=error:every=1:max=2");
  const auto result = store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
  EXPECT_EQ(result.record.stage, 1u);
  EXPECT_EQ(store.retries(), 2u);
  EXPECT_EQ(store.snapshot("s").get().stage, 1u);
}

TEST_F(FaultInjectionTest, NonRetryingPolicySurfacesTheTypedError) {
  SessionStore store = [] {
    SessionStore::Options o;
    o.executor.deterministic = true;
    return SessionStore{std::move(o)};
  }();
  store.open("s", twoTeamScenario(), true);

  util::FaultRegistry::instance().armFromSpec("store.apply=error:every=1:max=1");
  auto future = store.applyOperation("s", synth(1, "ana", 1, 30.0));
  EXPECT_THROW(future.get(), adpm::FaultInjectedError);
  EXPECT_EQ(store.retries(), 0u);
  EXPECT_EQ(store.snapshot("s").get().stage, 0u);  // op never applied
}

TEST_F(FaultInjectionTest, InjectedRecoveryFailureIsReportedNotFatal) {
  const fs::path walDir = dir_ / "rec";
  {
    SessionStore::Options o;
    o.executor.deterministic = true;
    o.walDir = walDir.string();
    SessionStore store{std::move(o)};
    store.open("s1", twoTeamScenario(), true);
    store.open("s2", twoTeamScenario(), true);
    store.applyOperation("s1", synth(1, "ana", 1, 30.0)).get();
    store.applyOperation("s2", synth(1, "ana", 1, 30.0)).get();
  }

  // The recover() of the second log (sorted order) fails by injection; the
  // first still comes back and the loss is reported.
  util::FaultRegistry::instance().armFromSpec("store.recover=error:every=2");
  SessionStore::Options o;
  o.executor.deterministic = true;
  o.walDir = walDir.string();
  SessionStore store{std::move(o)};
  EXPECT_EQ(store.recover(), (std::vector<std::string>{"s1"}));

  const std::vector<std::string> errors = store.recoverErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("s2.wal"), std::string::npos);
  const auto report = store.recoverReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(report[0].sessionLost);
  EXPECT_NE(report[0].detail.find("injected"), std::string::npos);
}

TEST_F(FaultInjectionTest, ShortWriteTearsTheLogAndSalvageTrimsIt) {
  const std::string path = (dir_ / "torn.wal").string();
  SessionConfig config;
  config.id = "s";
  config.scenarioName = "two-team";
  config.scenarioDddl = "object sys {}\n";
  dpm::Operation op = synth(1, "ana", 1, 30.0);
  {
    OperationLog log(path);
    log.appendOpen(config);
    log.appendOperation(op);

    // The injected short write persists a prefix of the record — a real
    // torn tail — and poisons the log against further appends.
    util::FaultRegistry::instance().armFromSpec(
        "wal.append=short-write:every=1:max=1");
    EXPECT_THROW(log.appendOperation(op), adpm::Error);
    EXPECT_THROW(log.appendOperation(op), adpm::Error);  // poisoned
    EXPECT_EQ(log.recordsWritten(), 2u);
  }
  EXPECT_THROW(OperationLog::read(path, RecoveryPolicy::Strict), adpm::Error);
  const OperationLog::Replay replay =
      OperationLog::read(path, RecoveryPolicy::Salvage);
  EXPECT_TRUE(replay.truncatedTail);
  EXPECT_GT(replay.droppedBytes, 0u);
  ASSERT_EQ(replay.operations.size(), 1u);
}

TEST_F(FaultInjectionTest, FailedFlushRollsBackSoTheAppendIsRetryable) {
  const std::string path = (dir_ / "flush.wal").string();
  SessionConfig config;
  config.id = "s";
  config.scenarioName = "two-team";
  config.scenarioDddl = "object sys {}\n";
  dpm::Operation op = synth(1, "ana", 1, 30.0);

  OperationLog log(path);
  log.appendOpen(config);
  const std::size_t durable = log.tailOffset();

  util::FaultRegistry::instance().armFromSpec("wal.flush=error:every=1:max=1");
  EXPECT_THROW(log.appendOperation(op), adpm::TransientError);
  EXPECT_EQ(log.tailOffset(), durable);                 // rolled back
  EXPECT_EQ(fs::file_size(path), durable);              // really rolled back
  log.appendOperation(op);                              // retry succeeds
  EXPECT_EQ(fs::file_size(path), log.tailOffset());
  const OperationLog::Replay replay = OperationLog::read(path);
  ASSERT_EQ(replay.operations.size(), 1u);  // exactly one, not a torn pair
}

TEST_F(FaultInjectionTest, FsyncFailurePoisonsTheLog) {
  const std::string path = (dir_ / "fsync.wal").string();
  SessionConfig config;
  config.id = "s";
  config.scenarioName = "two-team";
  config.scenarioDddl = "object sys {}\n";

  OperationLog log(path, /*sync=*/true);
  util::FaultRegistry::instance().armFromSpec("wal.fsync=error:every=1:max=1");
  // Not a TransientError: after a failed fsync the page-cache state is
  // unknowable, so no retry can honestly re-establish durability.
  try {
    log.appendOpen(config);
    FAIL() << "expected the injected fsync failure to throw";
  } catch (const adpm::TransientError&) {
    FAIL() << "fsync failure must not be retryable";
  } catch (const adpm::Error&) {
  }
  EXPECT_THROW(log.appendOperation(synth(1, "ana", 1, 30.0)), adpm::Error);
}

TEST_F(FaultInjectionTest, InjectedBusFailuresAreCountedNeverThrown) {
  SessionStore::Options o;
  o.executor.deterministic = true;
  SessionStore store{std::move(o)};
  store.open("s", twoTeamScenario(), true);
  auto queue = store.subscribe("s", "ana");

  util::FaultRegistry::instance().armFromSpec("bus.publish=error:every=1");
  // The ops themselves succeed — only the notification fan-out evaporates.
  // 30 + 40 > 50 violates the budget, which is guaranteed to fan out.
  store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
  const auto result = store.applyOperation("s", synth(2, "ben", 2, 40.0)).get();
  EXPECT_EQ(result.record.stage, 2u);
  EXPECT_EQ(queue->size(), 0u);
  EXPECT_GT(store.bus().injectedFailures(), 0u);
  EXPECT_EQ(store.bus().delivered(), 0u);
}

TEST_F(FaultInjectionTest, InjectedPostFailureIsTypedAndImmediate) {
  SessionStore::Options o;
  o.executor.deterministic = true;
  SessionStore store{std::move(o)};
  store.open("s", twoTeamScenario(), true);

  util::FaultRegistry::instance().armFromSpec("executor.post=error:every=1");
  EXPECT_THROW(store.snapshot("s"), adpm::FaultInjectedError);
  util::FaultRegistry::instance().reset();
  EXPECT_EQ(store.snapshot("s").get().stage, 0u);  // store still healthy
}

TEST_F(FaultInjectionTest, InjectedOpenFailureLeavesNoHalfSession) {
  const fs::path walDir = dir_ / "open";
  SessionStore::Options o;
  o.executor.deterministic = true;
  o.walDir = walDir.string();
  SessionStore store{std::move(o)};

  util::FaultRegistry::instance().armFromSpec("store.open=error:every=1:max=1");
  EXPECT_THROW(store.open("s", twoTeamScenario(), true),
               adpm::FaultInjectedError);
  EXPECT_FALSE(store.has("s"));
  EXPECT_FALSE(fs::exists(walDir / "s.wal"));  // no orphaned log either
  store.open("s", twoTeamScenario(), true);    // the id is still usable
  EXPECT_TRUE(store.has("s"));
}

}  // namespace
}  // namespace adpm::service

#else  // !ADPM_FAULT_INJECTION

namespace adpm::service {
namespace {

TEST(FaultInjectionTest, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "needs -DADPM_FAULT_INJECTION=ON";
}

}  // namespace
}  // namespace adpm::service

#endif
