// Concurrency: eight live sessions (three designers each) on a real thread
// pool, driven by the TeamSim load generator.  Run under ThreadSanitizer in
// CI (the ADPM_TSAN build) — the assertions here are the functional half,
// TSan provides the race-freedom half.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "scenarios/sensing.hpp"
#include "service/load.hpp"
#include "service/session.hpp"
#include "service/store.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_concurrency_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ServiceConcurrencyTest, EightSessionsOnFourWorkers) {
  SessionStore::Options options;
  options.executor.threads = 4;
  options.walDir = dir_.string();
  SessionStore store{std::move(options)};

  LoadOptions load;
  load.sessions = 8;  // > workers: strands must multiplex fairly
  load.sim.adpm = true;
  load.sim.seed = 42;
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  const LoadReport report = runLoad(store, spec, load);

  EXPECT_EQ(report.sessions, 8u);
  EXPECT_EQ(report.completedSessions, 8u);  // every design finished
  EXPECT_GT(report.operations, 0u);
  EXPECT_GT(report.evaluations, 0u);
  EXPECT_GT(report.notificationsPublished, 0u);
  EXPECT_GT(report.notificationsDelivered, 0u);
  EXPECT_EQ(store.sessionCount(), 8u);

  // Every concurrent session journaled a WAL that replays to the exact
  // state the live session ended in — the strand serialized its operations
  // correctly even with 8 sessions contending for 4 workers.
  for (const std::string& id : store.ids()) {
    const SessionSnapshot live = store.snapshot(id).get();
    EXPECT_TRUE(live.complete);
    const auto replayed =
        recoverSession((dir_ / (id + ".wal")).string());
    EXPECT_EQ(replayed->snapshot().text, live.text) << id;
    EXPECT_EQ(replayed->snapshot().digest, live.digest) << id;
  }
}

TEST_F(ServiceConcurrencyTest, ConcurrentRunMatchesDeterministicRun) {
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();

  // Deterministic single-thread reference fleet.
  SessionStore::Options ref;
  ref.executor.deterministic = true;
  SessionStore refStore{std::move(ref)};
  LoadOptions load;
  load.sessions = 4;
  load.sim.seed = 7;
  const LoadReport refReport = runLoad(refStore, spec, load);

  // Same fleet on real threads: per-session streams are independent, so
  // every session must land in the same final state.
  SessionStore::Options conc;
  conc.executor.threads = 4;
  SessionStore concStore{std::move(conc)};
  const LoadReport concReport = runLoad(concStore, spec, load);

  EXPECT_EQ(concReport.operations, refReport.operations);
  EXPECT_EQ(concReport.completedSessions, refReport.completedSessions);
  for (const std::string& id : refStore.ids()) {
    EXPECT_EQ(concStore.snapshot(id).get().text,
              refStore.snapshot(id).get().text)
        << id;
  }
}

TEST_F(ServiceConcurrencyTest, MixedFlowsSideBySide) {
  SessionStore::Options options;
  options.executor.threads = 2;
  SessionStore store{std::move(options)};
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();

  LoadOptions adpmLoad;
  adpmLoad.sessions = 2;
  adpmLoad.sim.adpm = true;
  adpmLoad.idPrefix = "t-";
  LoadOptions convLoad;
  convLoad.sessions = 2;
  convLoad.sim.adpm = false;
  convLoad.idPrefix = "f-";

  const LoadReport a = runLoad(store, spec, adpmLoad);
  const LoadReport b = runLoad(store, spec, convLoad);
  EXPECT_EQ(a.completedSessions, 2u);
  EXPECT_EQ(b.completedSessions, 2u);
  EXPECT_EQ(store.sessionCount(), 4u);
}

}  // namespace
}  // namespace adpm::service
