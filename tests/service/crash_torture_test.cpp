// Crash torture: a recorded WAL is damaged at every record boundary (and at
// sampled mid-record offsets and bit-flip positions), then recovered with
// RecoveryPolicy::Salvage.  The recovered session must be *bit-identical* —
// network hull, violation set, and (λ=T) the full GuidanceReport, all
// embedded in the canonical snapshot text — to a clean replay of the
// surviving operation prefix on a fresh session.  Both flows are swept.
//
// The fork/abort driver at the bottom (fault-injection builds on unix only)
// kills a *real process* at an exact WAL append via an armed Abort failpoint
// and recovers the log it left behind.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define ADPM_TORTURE_FORK 1
#else
#define ADPM_TORTURE_FORK 0
#endif

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "scenarios/sensing.hpp"
#include "service/load.hpp"
#include "service/session.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_torture_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Records one full session (TeamSim designers as clients, capped so the
  /// sweep stays fast) with a digest mark every 2 operations; returns the
  /// WAL path.
  std::string record(const char* sub, bool adpm) {
    SessionStore::Options o;
    o.executor.deterministic = true;
    o.session.markEvery = 2;
    o.walDir = (dir_ / sub).string();
    SessionStore store{std::move(o)};
    LoadOptions load;
    load.sessions = 1;
    load.sim.adpm = adpm;
    load.sim.seed = 7;
    load.maxOperationsPerSession = 12;
    runLoad(store, scenarios::sensingSystemScenario(), load);
    return (dir_ / sub / "load-0.wal").string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in), {}};
  }

  static void spit(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  /// Offsets just past each record line (candidate truncation points).
  static std::vector<std::size_t> boundaries(const std::string& content) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < content.size(); ++i) {
      if (content[i] == '\n') out.push_back(i + 1);
    }
    return out;
  }

  /// Ground truth: a fresh session replaying the first `k` logged operations
  /// with no log attached — what any salvaged recovery must match exactly.
  static SessionSnapshot cleanReplay(const OperationLog::Replay& intact,
                                     const dpm::ScenarioSpec& spec,
                                     std::size_t k) {
    Session session(intact.config, spec, nullptr);
    for (std::size_t i = 0; i < k; ++i) {
      session.replayApply(dpm::Operation(intact.operations[i]));
    }
    return session.snapshot();
  }

  /// Salvage-recovers `path` and asserts bit-identical state against the
  /// clean replay of however many operations the salvage kept.
  void expectSalvageMatchesCleanReplay(const std::string& path,
                                       const OperationLog::Replay& intact,
                                       const dpm::ScenarioSpec& spec,
                                       std::size_t expectKept,
                                       SalvageOutcome* outcomeOut = nullptr) {
    SalvageOutcome outcome;
    const auto recovered =
        recoverSession(path, {}, RecoveryPolicy::Salvage, &outcome);
    EXPECT_EQ(outcome.keptStage, expectKept);
    const SessionSnapshot got = recovered->snapshot();
    const SessionSnapshot want = cleanReplay(intact, spec, outcome.keptStage);
    EXPECT_EQ(got.stage, want.stage);
    EXPECT_EQ(got.violations, want.violations);
    EXPECT_EQ(got.text, want.text);  // hull + violations + guidance
    EXPECT_EQ(got.digest, want.digest);
    if (outcomeOut != nullptr) *outcomeOut = outcome;
  }

  /// Operations whose record ends at or before `cut` survive any trim to a
  /// boundary <= cut.
  static std::size_t opsWithin(const OperationLog::Replay& intact,
                               std::size_t cut) {
    std::size_t n = 0;
    for (const std::size_t end : intact.opEndOffsets) n += end <= cut ? 1 : 0;
    return n;
  }

  void sweepEveryRecordBoundary(const std::string& orig) {
    const OperationLog::Replay intact = OperationLog::read(orig);
    const dpm::ScenarioSpec spec = dddl::parse(intact.config.scenarioDddl);
    const std::string content = slurp(orig);
    ASSERT_GT(intact.operations.size(), 4u);  // else the sweep proves little
    ASSERT_GT(intact.marks.size(), 1u);

    const std::string copy = (dir_ / "cut.wal").string();
    std::size_t swept = 0;
    for (const std::size_t b : boundaries(content)) {
      if (b < intact.headerEndOffset) continue;  // header damage: no salvage
      SCOPED_TRACE("truncated at record boundary " + std::to_string(b));
      spit(copy, content.substr(0, b));

      SalvageOutcome outcome;
      expectSalvageMatchesCleanReplay(copy, intact, spec,
                                      opsWithin(intact, b), &outcome);
      // A boundary cut leaves only whole records: nothing to trim or drop.
      EXPECT_FALSE(outcome.salvaged);
      EXPECT_EQ(outcome.droppedBytes, 0u);
      // The reopened log is structurally sound (teardown seal included).
      EXPECT_NO_THROW(OperationLog::read(copy));
      ++swept;
    }
    EXPECT_EQ(swept, boundaries(content).size());
  }

  void sweepMidRecordCuts(const std::string& orig) {
    const OperationLog::Replay intact = OperationLog::read(orig);
    const dpm::ScenarioSpec spec = dddl::parse(intact.config.scenarioDddl);
    const std::string content = slurp(orig);
    std::vector<bool> isBoundary(content.size() + 1, false);
    for (const std::size_t b : boundaries(content)) isBoundary[b] = true;

    const std::string copy = (dir_ / "cut.wal").string();
    std::size_t swept = 0;
    // Deterministic stride over mid-record byte offsets past the header:
    // each cut leaves a genuinely torn tail that salvage must trim.
    for (std::size_t c = intact.headerEndOffset + 1; c < content.size();
         c += 23) {
      if (isBoundary[c]) continue;
      SCOPED_TRACE("truncated mid-record at byte " + std::to_string(c));
      spit(copy, content.substr(0, c));

      EXPECT_THROW(OperationLog::read(copy, RecoveryPolicy::Strict),
                   adpm::Error);
      SalvageOutcome outcome;
      expectSalvageMatchesCleanReplay(copy, intact, spec,
                                      opsWithin(intact, c), &outcome);
      EXPECT_TRUE(outcome.salvaged);
      EXPECT_GT(outcome.droppedBytes, 0u);
      ++swept;
    }
    EXPECT_GT(swept, 10u);
  }

  fs::path dir_;
};

TEST_F(CrashTortureTest, EveryRecordBoundaryTruncationRecoversAdpmFlow) {
  sweepEveryRecordBoundary(record("t", /*adpm=*/true));
}

TEST_F(CrashTortureTest, EveryRecordBoundaryTruncationRecoversConventional) {
  sweepEveryRecordBoundary(record("f", /*adpm=*/false));
}

TEST_F(CrashTortureTest, MidRecordTruncationSalvagesAdpmFlow) {
  sweepMidRecordCuts(record("t", /*adpm=*/true));
}

TEST_F(CrashTortureTest, MidRecordTruncationSalvagesConventional) {
  sweepMidRecordCuts(record("f", /*adpm=*/false));
}

TEST_F(CrashTortureTest, SampledBitFlipsNeverResurrectCorruptState) {
  const std::string orig = record("t", /*adpm=*/true);
  const OperationLog::Replay intact = OperationLog::read(orig);
  const dpm::ScenarioSpec spec = dddl::parse(intact.config.scenarioDddl);
  const std::string content = slurp(orig);

  const std::string copy = (dir_ / "flip.wal").string();
  std::size_t swept = 0;
  for (std::size_t at = intact.headerEndOffset; at < content.size();
       at += 31) {
    SCOPED_TRACE("bit-flipped byte " + std::to_string(at));
    std::string damaged = content;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
    spit(copy, damaged);

    SalvageOutcome outcome;
    const auto recovered =
        recoverSession(copy, {}, RecoveryPolicy::Salvage, &outcome);
    // The invariant: whatever recovery returns is exactly a clean prefix of
    // the intact history, never corrupt state.  Almost every flip is caught
    // by the per-record checksum and salvaged away; the one blind spot is a
    // flip inside the `"crc"` key *name* itself, which demotes the record to
    // an accepted-unverified legacy record — its payload bytes are untouched,
    // so recovery is clean and must keep the full history.
    if (!outcome.salvaged) {
      EXPECT_EQ(outcome.keptStage, intact.operations.size());
      EXPECT_EQ(outcome.droppedOperations, 0u);
    }
    const SessionSnapshot got = recovered->snapshot();
    const SessionSnapshot want = cleanReplay(intact, spec, outcome.keptStage);
    EXPECT_EQ(got.text, want.text);
    EXPECT_EQ(got.digest, want.digest);
    ++swept;
  }
  EXPECT_GT(swept, 10u);
}

TEST_F(CrashTortureTest, HeaderDamageIsUnrecoverableUnderEitherPolicy) {
  const std::string orig = record("t", /*adpm=*/true);
  const OperationLog::Replay intact = OperationLog::read(orig);
  const std::string content = slurp(orig);
  const std::string copy = (dir_ / "head.wal").string();

  // Truncation inside the header record.
  spit(copy, content.substr(0, intact.headerEndOffset / 2));
  EXPECT_THROW(recoverSession(copy, {}, RecoveryPolicy::Salvage), adpm::Error);
  // Bit flip inside the header record.
  std::string damaged = content;
  damaged[intact.headerEndOffset / 2] ^= 0x01;
  spit(copy, damaged);
  EXPECT_THROW(recoverSession(copy, {}, RecoveryPolicy::Salvage), adpm::Error);
}

TEST_F(CrashTortureTest, DamagedLogNeverAbortsSiblingRecovery) {
  SessionStore::Options o;
  o.executor.deterministic = true;
  o.session.markEvery = 2;
  o.walDir = (dir_ / "sib").string();
  {
    SessionStore store{SessionStore::Options(o)};
    LoadOptions load;
    load.sessions = 2;
    load.sim.adpm = true;
    load.sim.seed = 7;
    load.maxOperationsPerSession = 8;
    runLoad(store, scenarios::sensingSystemScenario(), load);
  }
  // Tear load-0's tail mid-record; load-1 stays pristine.
  const std::string victim = (dir_ / "sib" / "load-0.wal").string();
  const std::string content = slurp(victim);
  spit(victim, content.substr(0, content.size() - 3));

  {
    // Strict: the damaged log is refused whole, the sibling still recovers.
    SessionStore store{SessionStore::Options(o)};
    EXPECT_EQ(store.recover(), (std::vector<std::string>{"load-1"}));
    const auto report = store.recoverReport();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_TRUE(report[0].sessionLost);
    EXPECT_NE(report[0].path.find("load-0.wal"), std::string::npos);
  }
  fs::remove(dir_ / "sib" / "load-1.wal");  // id now live in no store
  {
    // Salvage: both sessions come back; the trim is reported, not silent.
    SessionStore::Options so{o};
    so.recovery = RecoveryPolicy::Salvage;
    SessionStore store{std::move(so)};
    EXPECT_EQ(store.recover(), (std::vector<std::string>{"load-0"}));
    EXPECT_TRUE(store.recoverErrors().empty());  // nothing lost
    const auto report = store.recoverReport();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_TRUE(report[0].salvaged);
    EXPECT_FALSE(report[0].sessionLost);
    EXPECT_GT(report[0].droppedBytes, 0u);
    EXPECT_GT(store.snapshot("load-0").get().stage, 0u);
  }
}

#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION && ADPM_TORTURE_FORK
TEST_F(CrashTortureTest, ForkedProcessAbortedMidAppendLeavesRecoverableLog) {
  const fs::path walDir = dir_ / "kill";
  const std::string logPath = (walDir / "load-0.wal").string();

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: arm an Abort on the 6th WAL append — header, four op records
    // and one periodic mark land; the process dies *inside* the next append
    // (an exact, reproducible death point, unlike timed kills).
    util::FaultPlan plan;
    plan.action = util::FaultAction::Abort;
    plan.everyNth = 6;
    util::FaultRegistry::instance().arm("wal.append", plan);

    SessionStore::Options o;
    o.executor.deterministic = true;
    o.session.markEvery = 2;
    o.walDir = walDir.string();
    SessionStore store{std::move(o)};
    LoadOptions load;
    load.sessions = 1;
    load.sim.adpm = true;
    load.sim.seed = 7;
    runLoad(store, scenarios::sensingSystemScenario(), load);
    ::_exit(0);  // unreachable when the failpoint fires
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of aborting";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  // Appends: open(1), op(2), op(3), mark@2(4), op(5), op(6 → abort before
  // any byte).  Three whole op records are durable.
  SalvageOutcome outcome;
  const auto recovered =
      recoverSession(logPath, {}, RecoveryPolicy::Salvage, &outcome);
  EXPECT_EQ(recovered->stage(), 3u);
  EXPECT_EQ(outcome.droppedOperations, 0u);  // abort-before-write is clean

  // The recovered state equals a clean replay of the surviving prefix.
  const OperationLog::Replay replay = OperationLog::read(logPath);
  const dpm::ScenarioSpec spec = dddl::parse(replay.config.scenarioDddl);
  Session fresh(replay.config, spec, nullptr);
  for (std::size_t i = 0; i < 3; ++i) {
    fresh.replayApply(dpm::Operation(replay.operations[i]));
  }
  EXPECT_EQ(recovered->snapshot().text, fresh.snapshot().text);
}
#else
TEST_F(CrashTortureTest, ForkedProcessAbortedMidAppendLeavesRecoverableLog) {
  GTEST_SKIP() << "needs -DADPM_FAULT_INJECTION=ON and fork()";
}
#endif

// -- multi-segment chains -----------------------------------------------------
//
// The same torture, applied to a rotated + checkpointed chain: cuts at every
// record boundary of every surviving segment, bit flips in segments *and*
// checkpoint files, and fork/abort inside rotation and checkpoint install.
// The oracle is unchanged — whatever recovery keeps must be bit-identical to
// a clean replay of that prefix — plus one new clause: with an intact newest
// checkpoint, recovery never keeps less than the checkpoint's stage.

/// Deterministic synthetic op stream (applySynthesis accepts any in-range
/// property rebind, so this is a legal transcript of arbitrary length).
dpm::Operation chainOp(std::size_t i, std::size_t propertyCount) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{0};
  op.designer = "gen";
  op.assignments.emplace_back(
      constraint::PropertyId{static_cast<std::uint32_t>(i % propertyCount)},
      0.25 + 0.125 * static_cast<double>(i % 7));
  return op;
}

Session::Options chainOptions() {
  Session::Options o;
  o.markEvery = 2;
  o.segmentOps = 4;
  o.checkpointEvery = 8;
  o.checkpointKeep = 2;
  return o;
}

class ChainTortureTest : public CrashTortureTest {
 protected:
  static constexpr std::size_t kOps = 18;
  /// Stage of the newest checkpoint the recording leaves on disk.
  static constexpr std::size_t kCkptStage = 16;

  /// Sets up config/spec/op-stream without touching the disk (the fork
  /// drivers record in a child process instead).
  void prepareChain(bool adpm) {
    spec_ = scenarios::sensingSystemScenario();
    config_ = SessionConfig{};
    config_.id = "chain";
    config_.adpm = adpm;
    config_.scenarioName = spec_.name;
    config_.scenarioDddl = dddl::write(spec_);
    ops_.clear();
    for (std::size_t i = 0; i < kOps; ++i) {
      ops_.push_back(chainOp(i, spec_.properties.size()));
    }
  }

  /// Records the 18-op chained session.  With segments of 4 ops, a
  /// checkpoint every 8, and keep=2, the disk afterwards holds segments
  /// 2 (ops 9..12), 3 (13..16), 4 (17..18) — 0 and 1 were compacted away —
  /// plus checkpoints 1 (stage 8) and 2 (stage 16).
  void recordChain(bool adpm) {
    prepareChain(adpm);
    srcDir_ = dir_ / (adpm ? "src-t" : "src-f");
    fs::create_directories(srcDir_);
    SegmentedLog::Options lo;
    lo.segmentOps = 4;
    auto log = std::make_unique<SegmentedLog>((srcDir_ / "chain.wal").string(),
                                              config_, lo);
    Session session(config_, spec_, std::move(log), chainOptions());
    for (const dpm::Operation& op : ops_) session.apply(dpm::Operation(op));
  }

  /// Fresh copy of the recording (Salvage recovery mutates the files).
  std::string scratchChain() {
    const fs::path scratch = dir_ / "scratch";
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    for (const fs::directory_entry& e : fs::directory_iterator(srcDir_)) {
      fs::copy_file(e.path(), scratch / e.path().filename());
    }
    return (scratch / "chain.wal").string();
  }

  SessionSnapshot chainCleanReplay(std::size_t k) const {
    Session session(config_, spec_, nullptr);
    for (std::size_t i = 0; i < k; ++i) {
      session.replayApply(dpm::Operation(ops_[i]));
    }
    return session.snapshot();
  }

  void expectChainSalvage(const std::string& base, std::size_t expectKept,
                          SalvageOutcome* outcomeOut = nullptr) {
    SalvageOutcome outcome;
    const auto recovered =
        recoverSession(base, chainOptions(), RecoveryPolicy::Salvage, &outcome);
    EXPECT_EQ(outcome.keptStage, expectKept);
    const SessionSnapshot got = recovered->snapshot();
    const SessionSnapshot want = chainCleanReplay(outcome.keptStage);
    EXPECT_EQ(got.stage, want.stage);
    EXPECT_EQ(got.text, want.text);
    EXPECT_EQ(got.digest, want.digest);
    if (outcomeOut != nullptr) *outcomeOut = outcome;
  }

  void sweepChainBoundaries(bool adpm) {
    recordChain(adpm);
    const SessionFiles files =
        listSessionFiles((srcDir_ / "chain.wal").string());
    ASSERT_EQ(files.segments.size(), 3u);
    ASSERT_EQ(files.checkpoints.size(), 2u);

    std::size_t swept = 0;
    for (const SegmentRef& ref : files.segments) {
      const OperationLog::Replay replay = OperationLog::read(ref.path);
      const std::string content = slurp(ref.path);
      for (const std::size_t b : boundaries(content)) {
        if (b < replay.headerEndOffset) continue;
        SCOPED_TRACE("segment " + std::to_string(ref.seq) +
                     " cut at record boundary " + std::to_string(b));
        const std::string base = scratchChain();
        spit(segmentPath(base, ref.seq), content.substr(0, b));

        // A cut that keeps every op of the segment (it only loses a
        // trailing mark, or nothing) leaves the chain continuous: all later
        // segments still apply.  A shorter cut breaks the chain there; the
        // newest intact checkpoint still recovers through stage 16, so
        // whichever reaches further wins.
        const std::size_t stageAtCut =
            replay.segmentStartStage + opsWithin(replay, b);
        const std::size_t expect =
            opsWithin(replay, b) == replay.operations.size()
                ? kOps
                : std::max(kCkptStage, stageAtCut);
        expectChainSalvage(base, expect);
        ++swept;
      }
    }
    EXPECT_GT(swept, 12u);
  }

  fs::path srcDir_;
  dpm::ScenarioSpec spec_;
  SessionConfig config_;
  std::vector<dpm::Operation> ops_;
};

TEST_F(ChainTortureTest, BoundaryCutsInEverySegmentRecoverAdpmFlow) {
  sweepChainBoundaries(/*adpm=*/true);
}

TEST_F(ChainTortureTest, BoundaryCutsInEverySegmentRecoverConventional) {
  sweepChainBoundaries(/*adpm=*/false);
}

TEST_F(ChainTortureTest, SegmentBitFlipsNeverLoseCheckpointedPrefix) {
  recordChain(/*adpm=*/true);
  const SessionFiles files = listSessionFiles((srcDir_ / "chain.wal").string());

  std::size_t swept = 0;
  for (const SegmentRef& ref : files.segments) {
    const OperationLog::Replay replay = OperationLog::read(ref.path);
    const std::string content = slurp(ref.path);
    for (std::size_t at = replay.headerEndOffset; at < content.size();
         at += 13) {
      SCOPED_TRACE("segment " + std::to_string(ref.seq) + " flipped byte " +
                   std::to_string(at));
      const std::string base = scratchChain();
      std::string damaged = content;
      damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
      spit(segmentPath(base, ref.seq), damaged);

      SalvageOutcome outcome;
      const auto recovered =
          recoverSession(base, chainOptions(), RecoveryPolicy::Salvage,
                         &outcome);
      // Both checkpoints are intact, so no segment flip can push recovery
      // below the newest checkpoint's stage — and whatever is kept must be
      // a clean prefix, bit for bit.
      EXPECT_GE(outcome.keptStage, kCkptStage);
      const SessionSnapshot got = recovered->snapshot();
      const SessionSnapshot want = chainCleanReplay(outcome.keptStage);
      EXPECT_EQ(got.text, want.text);
      EXPECT_EQ(got.digest, want.digest);
      ++swept;
    }
  }
  EXPECT_GT(swept, 10u);
}

TEST_F(ChainTortureTest, CheckpointBitFlipsDegradeWithoutDataLoss) {
  recordChain(/*adpm=*/true);
  const SessionFiles files = listSessionFiles((srcDir_ / "chain.wal").string());
  ASSERT_EQ(files.checkpoints.size(), 2u);

  std::size_t swept = 0;
  for (const SegmentRef& ref : files.checkpoints) {
    const std::string content = slurp(ref.path);
    // Checkpoint files embed the full manager state, so they are orders of
    // magnitude larger than a WAL record: scale the stride to sweep ~40
    // positions per file instead of thousands.
    const std::size_t stride = std::max<std::size_t>(11, content.size() / 40);
    for (std::size_t at = 0; at < content.size(); at += stride) {
      SCOPED_TRACE("checkpoint " + std::to_string(ref.seq) +
                   " flipped byte " + std::to_string(at));
      const std::string base = scratchChain();
      std::string damaged = content;
      damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
      spit(checkpointPath(base, ref.seq), damaged);

      // The surviving segments cover stages 8..18 and the *other*
      // checkpoint is intact, so every flip — wherever it lands — must
      // recover the full 18-op history: via the undamaged checkpoint plus
      // tail replay, or via the damaged-but-benign record itself.
      expectChainSalvage(base, kOps);
      ++swept;
    }
  }
  EXPECT_GT(swept, 10u);
}

#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION && ADPM_TORTURE_FORK
/// Child driver for the fork tests: runs the 18-op chained session with one
/// failpoint armed to Abort, dying mid-structure exactly where the plan says.
[[noreturn]] void runChainChildAndDie(const fs::path& walDir,
                                      const char* failpoint, unsigned nth) {
  util::FaultPlan plan;
  plan.action = util::FaultAction::Abort;
  plan.everyNth = nth;
  util::FaultRegistry::instance().arm(failpoint, plan);

  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  SessionConfig cfg;
  cfg.id = "chain";
  cfg.adpm = true;
  cfg.scenarioName = spec.name;
  cfg.scenarioDddl = dddl::write(spec);
  SegmentedLog::Options lo;
  lo.segmentOps = 4;
  auto log = std::make_unique<SegmentedLog>((walDir / "chain.wal").string(),
                                            cfg, lo);
  Session session(cfg, spec, std::move(log), chainOptions());
  for (std::size_t i = 0; i < 18; ++i) {
    session.apply(chainOp(i, spec.properties.size()));
  }
  ::_exit(0);  // unreachable when the failpoint fires
}

TEST_F(ChainTortureTest, ForkedProcessAbortedInsideRotationRecoversCleanly) {
  prepareChain(/*adpm=*/true);
  const fs::path walDir = dir_ / "rot";
  fs::create_directories(walDir);
  const std::string base = (walDir / "chain.wal").string();

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Rotation #1 happens appending op 5; #2 is the stage-8 checkpoint's
    // rotate-before-write — the child dies there, before the new segment
    // or any checkpoint file exists.
    runChainChildAndDie(walDir, "wal.rotate", /*nth=*/2);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of aborting";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  // Death inside rotate() leaves the chain ending exactly at a segment
  // boundary: segments 0 and 1 complete, nothing else.
  EXPECT_TRUE(fs::exists(segmentPath(base, 1)));
  EXPECT_FALSE(fs::exists(segmentPath(base, 2)));
  EXPECT_FALSE(fs::exists(checkpointPath(base, 1)));

  SalvageOutcome outcome;
  expectChainSalvage(base, 8, &outcome);
  EXPECT_FALSE(outcome.checkpointUsed);
  EXPECT_EQ(outcome.droppedOperations, 0u);  // abort-before-write is clean
}

TEST_F(ChainTortureTest, ForkedProcessAbortedInstallingCheckpointRecovers) {
  prepareChain(/*adpm=*/true);
  const fs::path walDir = dir_ / "inst";
  fs::create_directories(walDir);
  const std::string base = (walDir / "chain.wal").string();

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // The stage-8 checkpoint rotates to segment 2, writes + fsyncs the temp
    // file, then dies at the install failpoint: the temp is durable litter,
    // the checkpoint was never installed.
    runChainChildAndDie(walDir, "ckpt.rename", /*nth=*/1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of aborting";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  // The torn install left a *.tmp recovery must ignore, and no checkpoint.
  EXPECT_TRUE(fs::exists(checkpointPath(base, 1) + ".tmp"));
  EXPECT_FALSE(fs::exists(checkpointPath(base, 1)));
  EXPECT_TRUE(
      listSessionFiles(base).checkpoints.empty());

  SalvageOutcome outcome;
  expectChainSalvage(base, 8, &outcome);
  EXPECT_FALSE(outcome.checkpointUsed);
  EXPECT_EQ(outcome.checkpointFallbacks, 0u);  // *.tmp is not a checkpoint
}
#else
TEST_F(ChainTortureTest, ForkedProcessAbortedInsideRotationRecoversCleanly) {
  GTEST_SKIP() << "needs -DADPM_FAULT_INJECTION=ON and fork()";
}
TEST_F(ChainTortureTest, ForkedProcessAbortedInstallingCheckpointRecovers) {
  GTEST_SKIP() << "needs -DADPM_FAULT_INJECTION=ON and fork()";
}
#endif

}  // namespace
}  // namespace adpm::service
