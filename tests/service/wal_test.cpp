#include "service/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_wal_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static SessionConfig config() {
    SessionConfig c;
    c.id = "s1";
    c.adpm = true;
    c.scenarioName = "demo";
    c.scenarioDddl = "object sys {}\n";
    return c;
  }

  static dpm::Operation op(const char* designer, double v) {
    dpm::Operation o;
    o.kind = dpm::OperatorKind::Synthesis;
    o.problem = dpm::ProblemId{0};
    o.designer = designer;
    o.assignments.emplace_back(constraint::PropertyId{0}, v);
    return o;
  }

  fs::path dir_;
};

TEST_F(WalTest, RoundTripsHeaderOperationsAndMarks) {
  const std::string p = path("round.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendOperation(op("ben", 2.5));
    log.appendMark(2, "00000000deadbeef");
    EXPECT_EQ(log.recordsWritten(), 4u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_EQ(replay.config.id, "s1");
  EXPECT_TRUE(replay.config.adpm);
  EXPECT_EQ(replay.config.scenarioName, "demo");
  EXPECT_EQ(replay.config.scenarioDddl, "object sys {}\n");
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
  EXPECT_EQ(replay.operations[0].assignments[0].second, 1.5);
  EXPECT_EQ(replay.operations[1].designer, "ben");
  ASSERT_EQ(replay.marks.size(), 1u);
  EXPECT_EQ(replay.marks[0].stage, 2u);
  EXPECT_EQ(replay.marks[0].digest, "00000000deadbeef");
}

TEST_F(WalTest, AppendAfterReopenContinuesTheLog) {
  const std::string p = path("reopen.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
  }
  {
    OperationLog log(p);  // recovered session: append, no new header
    log.appendOperation(op("ben", 2.0));
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[1].designer, "ben");
}

TEST_F(WalTest, SyncModeAppendsAndRoundTrips) {
  // sync=true adds an fsync per record; the on-disk format is identical.
  const std::string p = path("sync.wal");
  {
    OperationLog log(p, /*sync=*/true);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
    EXPECT_EQ(log.recordsWritten(), 2u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 1u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
}

TEST_F(WalTest, ReadRejectsMissingHeader) {
  const std::string p = path("noheader.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"op","op":{"kind":"Synthesis","problem":0,"designer":"x"}})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownVersion) {
  const std::string p = path("badversion.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"open","v":99,"session":"s","adpm":true,"scenario":"d","dddl":""})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownRecordType) {
  const std::string p = path("badtype.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << R"({"t":"mystery"})" << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMalformedJsonLine) {
  const std::string p = path("badjson.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << "{not json\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMissingFile) {
  EXPECT_THROW(OperationLog::read(path("absent.wal")), adpm::Error);
}

}  // namespace
}  // namespace adpm::service
