#include "service/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_wal_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static SessionConfig config() {
    SessionConfig c;
    c.id = "s1";
    c.adpm = true;
    c.scenarioName = "demo";
    c.scenarioDddl = "object sys {}\n";
    return c;
  }

  static dpm::Operation op(const char* designer, double v) {
    dpm::Operation o;
    o.kind = dpm::OperatorKind::Synthesis;
    o.problem = dpm::ProblemId{0};
    o.designer = designer;
    o.assignments.emplace_back(constraint::PropertyId{0}, v);
    return o;
  }

  fs::path dir_;
};

TEST_F(WalTest, RoundTripsHeaderOperationsAndMarks) {
  const std::string p = path("round.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendOperation(op("ben", 2.5));
    log.appendMark(2, "00000000deadbeef");
    EXPECT_EQ(log.recordsWritten(), 4u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_EQ(replay.config.id, "s1");
  EXPECT_TRUE(replay.config.adpm);
  EXPECT_EQ(replay.config.scenarioName, "demo");
  EXPECT_EQ(replay.config.scenarioDddl, "object sys {}\n");
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
  EXPECT_EQ(replay.operations[0].assignments[0].second, 1.5);
  EXPECT_EQ(replay.operations[1].designer, "ben");
  ASSERT_EQ(replay.marks.size(), 1u);
  EXPECT_EQ(replay.marks[0].stage, 2u);
  EXPECT_EQ(replay.marks[0].digest, "00000000deadbeef");
}

TEST_F(WalTest, AppendAfterReopenContinuesTheLog) {
  const std::string p = path("reopen.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
  }
  {
    OperationLog log(p);  // recovered session: append, no new header
    log.appendOperation(op("ben", 2.0));
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[1].designer, "ben");
}

TEST_F(WalTest, SyncModeAppendsAndRoundTrips) {
  // sync=true adds an fsync per record; the on-disk format is identical.
  const std::string p = path("sync.wal");
  {
    OperationLog log(p, /*sync=*/true);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
    EXPECT_EQ(log.recordsWritten(), 2u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 1u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
}

TEST_F(WalTest, ReadRejectsMissingHeader) {
  const std::string p = path("noheader.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"op","op":{"kind":"Synthesis","problem":0,"designer":"x"}})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownVersion) {
  const std::string p = path("badversion.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"open","v":99,"session":"s","adpm":true,"scenario":"d","dddl":""})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownRecordType) {
  const std::string p = path("badtype.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << R"({"t":"mystery"})" << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMalformedJsonLine) {
  const std::string p = path("badjson.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << "{not json\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMissingFile) {
  EXPECT_THROW(OperationLog::read(path("absent.wal")), adpm::Error);
}

TEST_F(WalTest, EveryRecordCarriesAVerifiableChecksum) {
  const std::string p = path("crc.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendMark(1, "00000000deadbeef");
  }
  std::ifstream in(p);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"crc\":\""), std::string::npos)
        << "record " << lines << " lacks a crc";
  }
  EXPECT_EQ(lines, 3u);
  // And they verify: a clean read succeeds with full offsets bookkeeping.
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_FALSE(replay.truncatedTail);
  EXPECT_EQ(replay.goodEndOffset, fs::file_size(p));
  ASSERT_EQ(replay.opEndOffsets.size(), 1u);
  EXPECT_GT(replay.headerEndOffset, 0u);
  EXPECT_GT(replay.opEndOffsets[0], replay.headerEndOffset);
}

TEST_F(WalTest, BitFlipIsDetectedStrictThrowsSalvageTrims) {
  const std::string p = path("bitflip.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendOperation(op("ben", 2.5));
  }
  // Flip one payload byte inside the *second* op record ("ben" -> "behn"
  // style corruption without breaking the JSON structure): find it and
  // damage a digit of its assignment value.
  std::string content;
  {
    std::ifstream in(p, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t at = content.find("2.5");
  ASSERT_NE(at, std::string::npos);
  content[at] = '9';  // still valid JSON; crc must catch it
  {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << content;
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Strict), adpm::Error);

  const OperationLog::Replay replay =
      OperationLog::read(p, RecoveryPolicy::Salvage);
  EXPECT_TRUE(replay.truncatedTail);
  ASSERT_EQ(replay.operations.size(), 1u);  // "ana" survives, "ben" dropped
  EXPECT_EQ(replay.operations[0].designer, "ana");
  EXPECT_NE(replay.tailError.find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(replay.goodEndOffset + replay.droppedBytes, content.size());
}

TEST_F(WalTest, TornTailWithoutNewlineStrictThrowsSalvageTrims) {
  const std::string p = path("torn.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
  }
  const std::size_t intact = fs::file_size(p);
  {
    // A record the writer never finished: half a line, no newline.
    std::ofstream out(p, std::ios::app | std::ios::binary);
    out << R"({"t":"op","op":{"kind":"Syn)";
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Strict), adpm::Error);

  const OperationLog::Replay replay =
      OperationLog::read(p, RecoveryPolicy::Salvage);
  EXPECT_TRUE(replay.truncatedTail);
  EXPECT_EQ(replay.goodEndOffset, intact);
  EXPECT_EQ(replay.droppedBytes, fs::file_size(p) - intact);
  EXPECT_NE(replay.tailError.find("torn"), std::string::npos);
  ASSERT_EQ(replay.operations.size(), 1u);
}

TEST_F(WalTest, SalvageNeverRepairsHeaderDamage) {
  const std::string p = path("torn_header.wal");
  {
    // Half a header and nothing else: no trustworthy (id, scenario).
    std::ofstream out(p, std::ios::binary);
    out << R"({"t":"open","v":1,"session")";
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Salvage), adpm::Error);
}

TEST_F(WalTest, CrcLessLegacyRecordsAreAcceptedUnverified) {
  const std::string p = path("legacy.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"open","v":1,"session":"s1","adpm":true,"scenario":"d","dddl":"object sys {}\n"})"
        << "\n"
        << R"({"t":"mark","stage":0,"digest":"00000000deadbeef"})" << "\n";
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_EQ(replay.config.id, "s1");
  ASSERT_EQ(replay.marks.size(), 1u);
}

TEST_F(WalTest, TailOffsetTracksDurableBytes) {
  const std::string p = path("tail.wal");
  OperationLog log(p);
  EXPECT_EQ(log.tailOffset(), 0u);
  log.appendOpen(config());
  EXPECT_EQ(log.tailOffset(), fs::file_size(p));
  log.appendOperation(op("ana", 1.0));
  EXPECT_EQ(log.tailOffset(), fs::file_size(p));
}

}  // namespace
}  // namespace adpm::service
