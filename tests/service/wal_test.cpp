#include "service/wal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_wal_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static SessionConfig config() {
    SessionConfig c;
    c.id = "s1";
    c.adpm = true;
    c.scenarioName = "demo";
    c.scenarioDddl = "object sys {}\n";
    return c;
  }

  static dpm::Operation op(const char* designer, double v) {
    dpm::Operation o;
    o.kind = dpm::OperatorKind::Synthesis;
    o.problem = dpm::ProblemId{0};
    o.designer = designer;
    o.assignments.emplace_back(constraint::PropertyId{0}, v);
    return o;
  }

  fs::path dir_;
};

TEST_F(WalTest, RoundTripsHeaderOperationsAndMarks) {
  const std::string p = path("round.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendOperation(op("ben", 2.5));
    log.appendMark(2, "00000000deadbeef");
    EXPECT_EQ(log.recordsWritten(), 4u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_EQ(replay.config.id, "s1");
  EXPECT_TRUE(replay.config.adpm);
  EXPECT_EQ(replay.config.scenarioName, "demo");
  EXPECT_EQ(replay.config.scenarioDddl, "object sys {}\n");
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
  EXPECT_EQ(replay.operations[0].assignments[0].second, 1.5);
  EXPECT_EQ(replay.operations[1].designer, "ben");
  ASSERT_EQ(replay.marks.size(), 1u);
  EXPECT_EQ(replay.marks[0].stage, 2u);
  EXPECT_EQ(replay.marks[0].digest, "00000000deadbeef");
}

TEST_F(WalTest, AppendAfterReopenContinuesTheLog) {
  const std::string p = path("reopen.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
  }
  {
    OperationLog log(p);  // recovered session: append, no new header
    log.appendOperation(op("ben", 2.0));
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 2u);
  EXPECT_EQ(replay.operations[1].designer, "ben");
}

TEST_F(WalTest, SyncModeAppendsAndRoundTrips) {
  // sync=true adds an fsync per record; the on-disk format is identical.
  const std::string p = path("sync.wal");
  {
    OperationLog log(p, /*sync=*/true);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
    EXPECT_EQ(log.recordsWritten(), 2u);
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  ASSERT_EQ(replay.operations.size(), 1u);
  EXPECT_EQ(replay.operations[0].designer, "ana");
}

TEST_F(WalTest, ReadRejectsMissingHeader) {
  const std::string p = path("noheader.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"op","op":{"kind":"Synthesis","problem":0,"designer":"x"}})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownVersion) {
  const std::string p = path("badversion.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"open","v":99,"session":"s","adpm":true,"scenario":"d","dddl":""})"
        << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsUnknownRecordType) {
  const std::string p = path("badtype.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << R"({"t":"mystery"})" << "\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMalformedJsonLine) {
  const std::string p = path("badjson.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
  }
  {
    std::ofstream out(p, std::ios::app);
    out << "{not json\n";
  }
  EXPECT_THROW(OperationLog::read(p), adpm::Error);
}

TEST_F(WalTest, ReadRejectsMissingFile) {
  EXPECT_THROW(OperationLog::read(path("absent.wal")), adpm::Error);
}

TEST_F(WalTest, EveryRecordCarriesAVerifiableChecksum) {
  const std::string p = path("crc.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendMark(1, "00000000deadbeef");
  }
  std::ifstream in(p);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"crc\":\""), std::string::npos)
        << "record " << lines << " lacks a crc";
  }
  EXPECT_EQ(lines, 3u);
  // And they verify: a clean read succeeds with full offsets bookkeeping.
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_FALSE(replay.truncatedTail);
  EXPECT_EQ(replay.goodEndOffset, fs::file_size(p));
  ASSERT_EQ(replay.opEndOffsets.size(), 1u);
  EXPECT_GT(replay.headerEndOffset, 0u);
  EXPECT_GT(replay.opEndOffsets[0], replay.headerEndOffset);
}

TEST_F(WalTest, BitFlipIsDetectedStrictThrowsSalvageTrims) {
  const std::string p = path("bitflip.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.5));
    log.appendOperation(op("ben", 2.5));
  }
  // Flip one payload byte inside the *second* op record ("ben" -> "behn"
  // style corruption without breaking the JSON structure): find it and
  // damage a digit of its assignment value.
  std::string content;
  {
    std::ifstream in(p, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t at = content.find("2.5");
  ASSERT_NE(at, std::string::npos);
  content[at] = '9';  // still valid JSON; crc must catch it
  {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << content;
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Strict), adpm::Error);

  const OperationLog::Replay replay =
      OperationLog::read(p, RecoveryPolicy::Salvage);
  EXPECT_TRUE(replay.truncatedTail);
  ASSERT_EQ(replay.operations.size(), 1u);  // "ana" survives, "ben" dropped
  EXPECT_EQ(replay.operations[0].designer, "ana");
  EXPECT_NE(replay.tailError.find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(replay.goodEndOffset + replay.droppedBytes, content.size());
}

TEST_F(WalTest, TornTailWithoutNewlineStrictThrowsSalvageTrims) {
  const std::string p = path("torn.wal");
  {
    OperationLog log(p);
    log.appendOpen(config());
    log.appendOperation(op("ana", 1.0));
  }
  const std::size_t intact = fs::file_size(p);
  {
    // A record the writer never finished: half a line, no newline.
    std::ofstream out(p, std::ios::app | std::ios::binary);
    out << R"({"t":"op","op":{"kind":"Syn)";
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Strict), adpm::Error);

  const OperationLog::Replay replay =
      OperationLog::read(p, RecoveryPolicy::Salvage);
  EXPECT_TRUE(replay.truncatedTail);
  EXPECT_EQ(replay.goodEndOffset, intact);
  EXPECT_EQ(replay.droppedBytes, fs::file_size(p) - intact);
  EXPECT_NE(replay.tailError.find("torn"), std::string::npos);
  ASSERT_EQ(replay.operations.size(), 1u);
}

TEST_F(WalTest, SalvageNeverRepairsHeaderDamage) {
  const std::string p = path("torn_header.wal");
  {
    // Half a header and nothing else: no trustworthy (id, scenario).
    std::ofstream out(p, std::ios::binary);
    out << R"({"t":"open","v":1,"session")";
  }
  EXPECT_THROW(OperationLog::read(p, RecoveryPolicy::Salvage), adpm::Error);
}

TEST_F(WalTest, CrcLessLegacyRecordsAreAcceptedUnverified) {
  const std::string p = path("legacy.wal");
  {
    std::ofstream out(p);
    out << R"({"t":"open","v":1,"session":"s1","adpm":true,"scenario":"d","dddl":"object sys {}\n"})"
        << "\n"
        << R"({"t":"mark","stage":0,"digest":"00000000deadbeef"})" << "\n";
  }
  const OperationLog::Replay replay = OperationLog::read(p);
  EXPECT_EQ(replay.config.id, "s1");
  ASSERT_EQ(replay.marks.size(), 1u);
}

TEST_F(WalTest, TailOffsetTracksDurableBytes) {
  const std::string p = path("tail.wal");
  OperationLog log(p);
  EXPECT_EQ(log.tailOffset(), 0u);
  log.appendOpen(config());
  EXPECT_EQ(log.tailOffset(), fs::file_size(p));
  log.appendOperation(op("ana", 1.0));
  EXPECT_EQ(log.tailOffset(), fs::file_size(p));
}

// -- segments + checkpoints ---------------------------------------------------

TEST_F(WalTest, SegmentAndCheckpointFilenamesRoundTrip) {
  EXPECT_EQ(segmentPath("/w/s1.wal", 0), "/w/s1.wal");
  EXPECT_EQ(segmentPath("/w/s1.wal", 3), "/w/s1.wal.3");
  EXPECT_EQ(checkpointPath("/w/s1.wal", 2), "/w/s1.ckpt.2");

  // Ids may contain dots: the suffix match is anchored at the end.
  const auto seg0 = parseWalFileName("a.b.wal");
  ASSERT_TRUE(seg0.has_value());
  EXPECT_EQ(seg0->sessionId, "a.b");
  EXPECT_FALSE(seg0->isCheckpoint);
  EXPECT_EQ(seg0->seq, 0u);

  const auto segN = parseWalFileName("a.b.wal.7");
  ASSERT_TRUE(segN.has_value());
  EXPECT_EQ(segN->sessionId, "a.b");
  EXPECT_FALSE(segN->isCheckpoint);
  EXPECT_EQ(segN->seq, 7u);

  const auto ck = parseWalFileName("a.b.ckpt.2");
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->sessionId, "a.b");
  EXPECT_TRUE(ck->isCheckpoint);
  EXPECT_EQ(ck->seq, 2u);

  EXPECT_FALSE(parseWalFileName("a.b.wal.3.tmp").has_value());  // staging
  EXPECT_FALSE(parseWalFileName("a.b.wal.0").has_value());  // seq 0 = ".wal"
  EXPECT_FALSE(parseWalFileName("a.b.wal.x3").has_value());
  EXPECT_FALSE(parseWalFileName("notes.txt").has_value());
  EXPECT_FALSE(parseWalFileName(".wal").has_value());  // empty id
}

TEST_F(WalTest, SegmentedLogRotatesByOpCountWithChainedHeaders) {
  const std::string base = path("rot.wal");
  SegmentedLog::Options o;
  o.segmentOps = 2;
  SegmentedLog log(base, config(), o);
  for (int i = 0; i < 5; ++i) log.appendOperation(op("ana", 1.0 + i));
  EXPECT_EQ(log.stage(), 5u);
  EXPECT_EQ(log.segmentSeq(), 2u);
  EXPECT_EQ(log.rotations(), 2u);

  const SessionFiles files = listSessionFiles(base);
  ASSERT_EQ(files.segments.size(), 3u);
  EXPECT_TRUE(files.checkpoints.empty());

  // Each header places its file in the chain (seq + start stage), and the
  // seq-0 header stays byte-identical to the pre-segmentation format (no
  // "seq"/"stage" members when both are zero).
  const OperationLog::Replay r0 = OperationLog::read(segmentPath(base, 0));
  EXPECT_EQ(r0.segmentSeq, 0u);
  EXPECT_EQ(r0.segmentStartStage, 0u);
  EXPECT_EQ(r0.operations.size(), 2u);
  const OperationLog::Replay r2 = OperationLog::read(segmentPath(base, 2));
  EXPECT_EQ(r2.segmentSeq, 2u);
  EXPECT_EQ(r2.segmentStartStage, 4u);
  EXPECT_EQ(r2.operations.size(), 1u);

  std::ifstream in(segmentPath(base, 0));
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.find("\"seq\""), std::string::npos);
  EXPECT_EQ(header.find("\"stage\""), std::string::npos);
}

TEST_F(WalTest, CheckpointRoundTripsAndAnyDamageThrows) {
  const std::string base = path("ck.wal");
  { OperationLog log(base); log.appendOpen(config()); }  // anchor the dir
  Checkpoint ck;
  ck.config = config();
  ck.seq = 2;
  ck.stage = 16;
  ck.walSeq = 3;
  ck.state = util::json::parse(R"({"stage":16,"evals":40})");
  ck.digest = "00000000deadbeef";
  writeCheckpoint(base, ck, /*sync=*/false);

  const std::string ckPath = checkpointPath(base, 2);
  const Checkpoint back = readCheckpoint(ckPath);
  EXPECT_EQ(back.config.id, "s1");
  EXPECT_EQ(back.config.scenarioDddl, "object sys {}\n");
  EXPECT_EQ(back.seq, 2u);
  EXPECT_EQ(back.stage, 16u);
  EXPECT_EQ(back.walSeq, 3u);
  EXPECT_EQ(back.digest, "00000000deadbeef");
  EXPECT_EQ(back.state.at("evals").asNumber(), 40.0);

  // The installed file is a single crc-guarded line: any bit flip or torn
  // tail must throw (the caller then degrades to an older checkpoint).
  std::ifstream in(ckPath, std::ios::binary);
  const std::string content{std::istreambuf_iterator<char>(in), {}};
  for (std::size_t at = 0; at < content.size(); at += 7) {
    std::string damaged = content;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x04);
    {
      std::ofstream out(ckPath, std::ios::binary | std::ios::trunc);
      out << damaged;
    }
    EXPECT_THROW(readCheckpoint(ckPath), adpm::Error)
        << "flip at byte " << at;
  }
  {
    std::ofstream out(ckPath, std::ios::binary | std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  EXPECT_THROW(readCheckpoint(ckPath), adpm::Error);
  EXPECT_THROW(readCheckpoint(checkpointPath(base, 9)), adpm::Error);
}

TEST_F(WalTest, WriteCheckpointRotatesAndCompactionKeepsTheFallbackChain) {
  const std::string base = path("cmp.wal");
  SegmentedLog::Options o;
  o.segmentOps = 100;  // rotation driven by checkpoints only
  SegmentedLog log(base, config(), o);
  const util::json::Value state = util::json::parse(R"({"s":1})");

  auto ckptAt = [&](std::size_t stage, std::size_t keep) {
    log.writeCheckpoint(util::json::Value(state), stage, "0000000000000000",
                        keep);
  };

  for (int i = 0; i < 4; ++i) log.appendOperation(op("ana", 1.0 + i));
  ckptAt(4, /*keep=*/2);
  // The checkpoint rotated first, so its walSeq segment starts at stage 4
  // — but with only one checkpoint durable, no segment is deleted yet: a
  // corrupt checkpoint must still degrade to a full replay from seq 0.
  EXPECT_EQ(log.segmentSeq(), 1u);
  EXPECT_EQ(log.checkpointCount(), 1u);
  EXPECT_EQ(log.segmentsCompacted(), 0u);
  EXPECT_TRUE(fs::exists(segmentPath(base, 0)));

  for (int i = 0; i < 4; ++i) log.appendOperation(op("ben", 2.0 + i));
  ckptAt(8, /*keep=*/2);
  // Two checkpoints durable: segments older than the *oldest* retained
  // checkpoint's walSeq (seg 0 < walSeq 1) are superseded and deleted.
  EXPECT_EQ(log.checkpointCount(), 2u);
  EXPECT_EQ(log.segmentsCompacted(), 1u);
  EXPECT_FALSE(fs::exists(segmentPath(base, 0)));
  EXPECT_TRUE(fs::exists(segmentPath(base, 1)));

  for (int i = 0; i < 4; ++i) log.appendOperation(op("cyd", 3.0 + i));
  ckptAt(12, /*keep=*/2);
  // Checkpoint 1 trimmed (keep=2) and segment 1 superseded.
  EXPECT_EQ(log.checkpointCount(), 2u);
  EXPECT_FALSE(fs::exists(checkpointPath(base, 1)));
  EXPECT_TRUE(fs::exists(checkpointPath(base, 2)));
  EXPECT_TRUE(fs::exists(checkpointPath(base, 3)));
  EXPECT_FALSE(fs::exists(segmentPath(base, 1)));
  EXPECT_TRUE(fs::exists(segmentPath(base, 2)));
  EXPECT_EQ(log.stage(), 12u);

  const SessionFiles files = listSessionFiles(base);
  ASSERT_EQ(files.segments.size(), 2u);  // walSeq 2 + current (3)
  ASSERT_EQ(files.checkpoints.size(), 2u);
  EXPECT_EQ(files.checkpoints.front().seq, 2u);
  EXPECT_EQ(files.checkpoints.back().seq, 3u);
}

TEST_F(WalTest, SegmentedLogRotatesByBytes) {
  const std::string base = path("bytes.wal");
  SegmentedLog::Options o;
  o.segmentBytes = 1;  // every append lands in a fresh segment
  SegmentedLog log(base, config(), o);
  log.appendOperation(op("ana", 1.0));
  log.appendOperation(op("ana", 2.0));
  log.appendOperation(op("ana", 3.0));
  // The first op stays in seg 0 (a segment never rotates while empty).
  EXPECT_EQ(log.rotations(), 2u);
  EXPECT_EQ(log.segmentSeq(), 2u);
  EXPECT_EQ(log.stage(), 3u);
}

}  // namespace
}  // namespace adpm::service
