// Deterministic replay: a session rebuilt from its operation log must land
// in a bit-identical observable state — network hull, violation set, and
// (λ=T) the full GuidanceReport — for both flows.  This is the durability
// guarantee the WAL exists for.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scenarios/sensing.hpp"
#include "service/load.hpp"
#include "service/session.hpp"
#include "service/store.hpp"
#include "util/error.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

class SessionReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_replay_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SessionStore::Options storeOptions(const char* sub) const {
    SessionStore::Options o;
    o.executor.deterministic = true;
    o.session.markEvery = 1;  // a digest check after every operation
    o.walDir = (dir_ / sub).string();
    return o;
  }

  /// Drives one full session (TeamSim designers as clients) and returns its
  /// final snapshot.  The WAL lands in dir_/<sub>/<prefix>0.wal.
  SessionSnapshot runOne(const char* sub, bool adpm, std::uint64_t seed) {
    SessionStore store(storeOptions(sub));
    LoadOptions load;
    load.sessions = 1;
    load.sim.adpm = adpm;
    load.sim.seed = seed;
    const LoadReport report =
        runLoad(store, scenarios::sensingSystemScenario(), load);
    EXPECT_EQ(report.sessions, 1u);
    EXPECT_GT(report.operations, 0u);
    return store.snapshot("load-0").get();
  }

  std::string walPath(const char* sub) const {
    return (dir_ / sub / "load-0.wal").string();
  }

  fs::path dir_;
};

TEST_F(SessionReplayTest, ReplayIsBitIdenticalForAdpmFlow) {
  const SessionSnapshot live = runOne("t", /*adpm=*/true, 7);
  ASSERT_FALSE(live.text.empty());
  // λ=T snapshots embed the mined guidance (the "g " lines).
  EXPECT_NE(live.text.find("\ng "), std::string::npos);

  const auto recovered = recoverSession(walPath("t"));
  const SessionSnapshot replayed = recovered->snapshot();
  EXPECT_EQ(replayed.stage, live.stage);
  EXPECT_EQ(replayed.violations, live.violations);
  EXPECT_EQ(replayed.text, live.text);  // bit-identical state
  EXPECT_EQ(replayed.digest, live.digest);
}

TEST_F(SessionReplayTest, ReplayIsBitIdenticalForConventionalFlow) {
  const SessionSnapshot live = runOne("f", /*adpm=*/false, 7);
  ASSERT_FALSE(live.text.empty());
  // λ=F mines no guidance; the snapshot must say so too.
  EXPECT_EQ(live.text.find("\ng "), std::string::npos);

  const auto recovered = recoverSession(walPath("f"));
  const SessionSnapshot replayed = recovered->snapshot();
  EXPECT_EQ(replayed.stage, live.stage);
  EXPECT_EQ(replayed.text, live.text);
  EXPECT_EQ(replayed.digest, live.digest);
}

TEST_F(SessionReplayTest, IdenticalSeedsProduceIdenticalRuns) {
  const SessionSnapshot a = runOne("a", /*adpm=*/true, 11);
  const SessionSnapshot b = runOne("b", /*adpm=*/true, 11);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.digest, b.digest);
}

TEST_F(SessionReplayTest, FlowsDiverge) {
  // Sanity: λ actually changes the process (else the two flow tests above
  // would be testing the same thing twice).
  const SessionSnapshot t = runOne("dt", /*adpm=*/true, 7);
  const SessionSnapshot f = runOne("df", /*adpm=*/false, 7);
  EXPECT_NE(t.text, f.text);
}

TEST_F(SessionReplayTest, RecoveryDetectsDivergence) {
  runOne("tamper", /*adpm=*/true, 7);

  // Corrupt one mark digest; replay must refuse the log.
  const std::string path = walPath("tamper");
  std::stringstream buffer;
  {
    std::ifstream in(path);
    buffer << in.rdbuf();
  }
  std::string content = buffer.str();
  const std::string needle = "\"digest\":\"";
  const std::size_t at = content.find(needle);
  ASSERT_NE(at, std::string::npos);
  content[at + needle.size()] =
      content[at + needle.size()] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  EXPECT_THROW(recoverSession(path), adpm::Error);
}

TEST_F(SessionReplayTest, TeardownSealsTheLogWithAFinalMark) {
  // With the default markEvery (32) a short sensing run never reaches a
  // periodic boundary; the seal mark written on session teardown is what
  // lets recovery validate the *final* state of every WAL.
  SessionStore::Options o = storeOptions("seal");
  o.session.markEvery = 32;
  std::size_t operations = 0;
  {
    SessionStore store(o);
    LoadOptions load;
    load.sessions = 1;
    load.sim.adpm = true;
    load.sim.seed = 7;
    operations =
        runLoad(store, scenarios::sensingSystemScenario(), load).operations;
  }
  ASSERT_GT(operations, 0u);
  ASSERT_LT(operations, 32u);  // else this test exercises nothing

  const OperationLog::Replay replay = OperationLog::read(walPath("seal"));
  ASSERT_EQ(replay.marks.size(), 1u);  // no periodic marks, one seal
  EXPECT_EQ(replay.marks.back().stage, operations);

  // The seal digest is live: recovery checks it...
  { const auto recovered = recoverSession(walPath("seal")); }

  // ...and a recover → destroy cycle must not stack duplicate seals.
  EXPECT_EQ(OperationLog::read(walPath("seal")).marks.size(), 1u);

  // Tampering with the seal is caught even though no periodic mark exists.
  const std::string path = walPath("seal");
  std::stringstream buffer;
  {
    std::ifstream in(path);
    buffer << in.rdbuf();
  }
  std::string content = buffer.str();
  const std::string needle = "\"digest\":\"";
  const std::size_t at = content.find(needle);
  ASSERT_NE(at, std::string::npos);
  content[at + needle.size()] =
      content[at + needle.size()] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  EXPECT_THROW(recoverSession(path), adpm::Error);
}

TEST_F(SessionReplayTest, StoreRecoverRebuildsAllSessions) {
  SessionSnapshot liveT;
  SessionSnapshot liveF;
  {
    SessionStore store(storeOptions("multi"));
    LoadOptions load;
    load.sessions = 1;
    load.sim.seed = 3;
    load.sim.adpm = true;
    load.idPrefix = "t-";
    runLoad(store, scenarios::sensingSystemScenario(), load);
    load.sim.adpm = false;
    load.idPrefix = "f-";
    runLoad(store, scenarios::sensingSystemScenario(), load);
    liveT = store.snapshot("t-0").get();
    liveF = store.snapshot("f-0").get();
  }

  SessionStore fresh(storeOptions("multi"));
  const std::vector<std::string> recovered = fresh.recover();
  EXPECT_EQ(recovered,
            (std::vector<std::string>{"f-0", "t-0"}));  // sorted by path
  EXPECT_TRUE(fresh.recoverErrors().empty());
  EXPECT_EQ(fresh.snapshot("t-0").get().text, liveT.text);
  EXPECT_EQ(fresh.snapshot("f-0").get().text, liveF.text);

  // Recovery skips ids that are already live instead of clobbering them.
  EXPECT_TRUE(fresh.recover().empty());
}

TEST_F(SessionReplayTest, RecoverSkipsBadLogsAndRecoversTheRest) {
  {
    SessionStore store(storeOptions("part"));
    LoadOptions load;
    load.sessions = 1;
    load.sim.seed = 3;
    load.sim.adpm = true;
    load.idPrefix = "t-";
    runLoad(store, scenarios::sensingSystemScenario(), load);
  }
  // A corrupt sibling log (no header) sorts before the good one.
  const fs::path bad = dir_ / "part" / "a-bad.wal";
  {
    std::ofstream out(bad);
    out << "{not json\n";
  }

  SessionStore fresh(storeOptions("part"));
  const std::vector<std::string> recovered = fresh.recover();
  EXPECT_EQ(recovered, (std::vector<std::string>{"t-0"}));
  EXPECT_GT(fresh.snapshot("t-0").get().stage, 0u);  // fully rebuilt
  const std::vector<std::string> errors = fresh.recoverErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("a-bad.wal"), std::string::npos);
}

}  // namespace
}  // namespace adpm::service
