#include "constraint/miner.hpp"

#include <gtest/gtest.h>

namespace adpm::constraint {
namespace {

using expr::Expr;
using interval::Domain;

// Mirror of the paper's Fig. 3/Fig. 4 situation: Diff-pair-W appears in three
// constraints (power, impedance, gain), two of which get violated.
struct BrowserFixture {
  Network net;
  PropertyId w;       // Diff-pair-W: larger helps gain & impedance, hurts power
  PropertyId l;       // Freq-ind
  ConstraintId cGain, cZin, cPower;

  BrowserFixture() {
    w = net.addProperty({"Diff-pair-W", "LNA+Mixer",
                         Domain::continuous(1.0, 8.0), "um", {}});
    l = net.addProperty({"Freq-ind", "LNA+Mixer",
                         Domain::continuous(0.05, 0.5), "uH", {}});
    const Expr W = net.var(w);
    const Expr L = net.var(l);
    // gain = 30*W*L >= 48
    cGain = net.addConstraint("TotalGain-C13", 30.0 * W * L, Relation::Ge,
                              Expr::constant(48.0));
    // Zin matching: 120/W <= 40  (larger W lowers input impedance)
    cZin = net.addConstraint("LNA-Zin-C9", 120.0 / W, Relation::Le,
                             Expr::constant(40.0));
    // power: 25*W <= 200
    cPower = net.addConstraint("LNAPower-C7", 25.0 * W, Relation::Le,
                               Expr::constant(200.0));
  }
};

TEST(HeuristicMiner, BetaCountsConnectedConstraints) {
  BrowserFixture f;
  Propagator prop;
  const auto r = prop.run(f.net);
  HeuristicMiner miner;
  const auto g = miner.mine(f.net, r);
  // The paper's Fig. 3: Diff-pair-W appears in 3 constraints (beta = 3).
  EXPECT_EQ(g.of(f.w).beta, 3);
  EXPECT_EQ(g.of(f.l).beta, 1);
}

TEST(HeuristicMiner, AlphaCountsConnectedViolations) {
  BrowserFixture f;
  // Fig. 4's story: a small W violates both gain and impedance.
  f.net.bind(f.w, 2.5);
  f.net.bind(f.l, 0.2);
  Propagator prop;
  const auto r = prop.run(f.net);
  // gain = 30*2.5*0.2 = 15 < 48 (violated); Zin = 48 > 40 (violated);
  // power = 62.5 <= 200 (satisfied).
  EXPECT_TRUE(r.isViolated(f.cGain));
  EXPECT_TRUE(r.isViolated(f.cZin));
  EXPECT_FALSE(r.isViolated(f.cPower));

  HeuristicMiner miner;
  const auto g = miner.mine(f.net, r);
  EXPECT_EQ(g.of(f.w).alpha, 2);  // the paper's alpha_2 = 2
  EXPECT_EQ(g.of(f.l).alpha, 1);
  EXPECT_EQ(g.violated.size(), 2u);
}

TEST(HeuristicMiner, RepairVotesPointTowardFix) {
  BrowserFixture f;
  f.net.bind(f.w, 2.5);
  f.net.bind(f.l, 0.2);
  Propagator prop;
  const auto r = prop.run(f.net);
  HeuristicMiner miner;
  const auto g = miner.mine(f.net, r);
  // Both violations are fixed by increasing W (exactly the paper's Section
  // 2.4.3 resolution: widen the differential pair).
  EXPECT_EQ(g.of(f.w).repairVotesUp, 2);
  EXPECT_EQ(g.of(f.w).repairVotesDown, 0);
  EXPECT_EQ(g.of(f.w).preferredRepairDirection(), 1);
}

TEST(HeuristicMiner, MonotoneListsSplitByHelpDirection) {
  BrowserFixture f;
  Propagator prop;
  const auto r = prop.run(f.net);
  HeuristicMiner miner;
  const auto g = miner.mine(f.net, r);
  const auto& gw = g.of(f.w);
  // Increasing W helps gain (>=) and Zin (120/W <=), hurts power (<=).
  EXPECT_EQ(gw.increasing.size(), 2u);
  EXPECT_EQ(gw.decreasing.size(), 1u);
  EXPECT_EQ(gw.decreasing[0], f.cPower);
}

TEST(HeuristicMiner, FeasibleSubspaceShrinksWithTighterSpec) {
  BrowserFixture loose;
  Propagator prop;
  HeuristicMiner miner;
  const auto gLoose =
      miner.mine(loose.net, prop.run(loose.net)).of(loose.w);

  BrowserFixture tight;
  // Tighten the power budget: 25*W <= 80 forces W <= 3.2.
  tight.net.constraint(tight.cPower);  // (exists)
  // Rebuild a tighter network instead of mutating the constraint.
  Network net2;
  const auto w2 = net2.addProperty({"Diff-pair-W", "LNA+Mixer",
                                    Domain::continuous(1.0, 8.0), "um", {}});
  net2.addConstraint("power", 25.0 * net2.var(w2), Relation::Le,
                     Expr::constant(80.0));
  const auto g2 = miner.mine(net2, prop.run(net2)).of(w2);

  EXPECT_LT(g2.relativeFeasibleSize, gLoose.relativeFeasibleSize + 1e-12);
  EXPECT_NEAR(g2.feasible.maxValue(), 3.2, 1e-6);
}

TEST(HeuristicMiner, WhatIfRecoversRangeForBoundViolatedProperty) {
  BrowserFixture f;
  f.net.bind(f.w, 2.5);
  f.net.bind(f.l, 0.2);
  Propagator prop;
  const auto r = prop.run(f.net);
  HeuristicMiner withWhatIf;
  const auto g = withWhatIf.mine(f.net, r);
  // Bound at 2.5 with violations: the what-if range shows where W could be
  // rebound (Zin needs W >= 3, power allows W <= 8).
  const auto& gw = g.of(f.w);
  EXPECT_FALSE(gw.feasible.empty());
  EXPECT_GE(gw.feasible.minValue(), 3.0 - 1e-6);
  EXPECT_GT(g.extraEvaluations, 0u);

  HeuristicMiner without{
      HeuristicMiner::Options{.whatIfForViolated = false, .propagation = {}}};
  const auto g2 = without.mine(f.net, r);
  EXPECT_EQ(g2.extraEvaluations, 0u);
}

TEST(HeuristicMiner, RelativeFeasibleSizeRanksDifficulty) {
  // The Fig. 2 heuristic: Freq-ind's feasible window is relatively smaller
  // than Diff-pair-W's, so the designer focuses on the inductor first.
  Network net;
  const auto w = net.addProperty({"Diff-pair-W", "LNA+Mixer",
                                  Domain::continuous(1.0, 8.0), "um", {}});
  const auto l = net.addProperty({"Freq-ind", "LNA+Mixer",
                                  Domain::continuous(0.05, 0.5), "uH", {}});
  // W >= 2.5 (keeps ~79% of its range); L in [0.17, 0.2] (~7%).
  net.addConstraint("w-min", net.var(w), Relation::Ge, Expr::constant(2.5));
  net.addConstraint("l-lo", net.var(l), Relation::Ge, Expr::constant(0.17));
  net.addConstraint("l-hi", net.var(l), Relation::Le, Expr::constant(0.2));
  Propagator prop;
  HeuristicMiner miner;
  const auto g = miner.mine(net, prop.run(net));
  EXPECT_LT(g.of(l).relativeFeasibleSize, g.of(w).relativeFeasibleSize);
}

TEST(HelpDirection, EqualityUsesViolationSide) {
  Network net;
  const auto x = net.addProperty({"x", "o", Domain::continuous(0, 10), "", {}});
  const auto y = net.addProperty({"y", "o", Domain::continuous(0, 10), "", {}});
  const auto cid = net.addConstraint("model", net.var(y), Relation::Eq,
                                     2.0 * net.var(x));
  // y = 2x violated with y too small: y=1, x=4 (residual y-2x = -7 < 0).
  net.bind(x, 4.0);
  net.bind(y, 1.0);
  const auto box = net.currentBox();
  // Residual must rise: increasing y helps (+1), increasing x hurts (-1).
  EXPECT_EQ(helpDirection(net, net.constraint(cid), y, box), 1);
  EXPECT_EQ(helpDirection(net, net.constraint(cid), x, box), -1);
}

TEST(HelpDirection, FallsBackToDeclared) {
  Network net;
  const auto x = net.addProperty({"x", "o", Domain::continuous(-5, 5), "", {}});
  // residual x^2 - 4 <= 0; over [-5,5] the derivative sign is unprovable.
  const auto cid = net.addConstraint("sq", expr::sqr(net.var(x)), Relation::Le,
                                     expr::Expr::constant(4.0));
  const auto box = net.currentBox();
  EXPECT_EQ(helpDirection(net, net.constraint(cid), x, box), 0);
  net.constraint(cid).declareHelpDirection(x, false);
  EXPECT_EQ(helpDirection(net, net.constraint(cid), x, box), -1);
}

TEST(HelpDirection, ProvenConstantBeatsDeclaredDirection) {
  // Precedence fix: Direction::Constant (derivative identically zero over
  // the box — moving the property provably cannot change the residual) must
  // yield "no direction" WITHOUT falling back to the DDDL declaration; only
  // Unknown (sign unprovable) defers to the declared direction.
  Network net;
  const auto x = net.addProperty({"x", "o", Domain::continuous(0, 10), "", {}});
  const auto y = net.addProperty({"y", "o", Domain::continuous(0, 10), "", {}});
  // residual x*y - 50 <= 0; with y pinned at 0 the derivative w.r.t. x is
  // the enclosure of y = [0,0] — proven Constant.
  const auto cid = net.addConstraint("xy", net.var(x) * net.var(y),
                                     Relation::Le, expr::Expr::constant(50.0));
  net.constraint(cid).declareHelpDirection(x, false);
  net.bind(y, 0.0);
  const auto box = net.currentBox();
  EXPECT_EQ(expr::monotonicity(net.constraint(cid).residual(), box, x.value),
            expr::Direction::Constant);
  // Despite the declared "decrease helps", the proven Constant wins.
  EXPECT_EQ(helpDirection(net, net.constraint(cid), x, box), 0);

  // Unpinned, the derivative sign is provable again (y ∈ [0,10] ⇒
  // increasing residual, and Le wants it lower ⇒ decrease x helps): the
  // proven sign, not the declaration, now drives the answer.  The genuinely
  // Unknown → declared fallback is covered by FallsBackToDeclared above.
  net.unbind(y);
  const auto box2 = net.currentBox();
  EXPECT_EQ(helpDirection(net, net.constraint(cid), x, box2), -1);
}

TEST(HeuristicMiner, FastEngineMatchesReferenceOnFixture) {
  BrowserFixture f;
  f.net.bind(f.w, 2.5);
  f.net.bind(f.l, 0.2);
  Propagator prop;
  const auto r = prop.run(f.net);
  HeuristicMiner fast{HeuristicMiner::Options{.engine = MinerEngine::Fast}};
  HeuristicMiner ref{
      HeuristicMiner::Options{.engine = MinerEngine::Reference}};
  const auto gf = fast.mine(f.net, r);
  const auto gr = ref.mine(f.net, r);
  ASSERT_EQ(gf.properties.size(), gr.properties.size());
  for (std::size_t i = 0; i < gf.properties.size(); ++i) {
    EXPECT_EQ(gf.properties[i].beta, gr.properties[i].beta);
    EXPECT_EQ(gf.properties[i].alpha, gr.properties[i].alpha);
    EXPECT_EQ(gf.properties[i].increasing, gr.properties[i].increasing);
    EXPECT_EQ(gf.properties[i].decreasing, gr.properties[i].decreasing);
    EXPECT_EQ(gf.properties[i].repairVotesUp, gr.properties[i].repairVotesUp);
    EXPECT_EQ(gf.properties[i].repairVotesDown,
              gr.properties[i].repairVotesDown);
    EXPECT_EQ(gf.properties[i].feasible, gr.properties[i].feasible);
  }

  // A rebind moves the box generation, so the fast engine's cache must
  // refresh rather than serve stale directions.
  f.net.bind(f.w, 7.5);
  const auto r2 = prop.run(f.net);
  const auto gf2 = fast.mine(f.net, r2);
  const auto gr2 = ref.mine(f.net, r2);
  for (std::size_t i = 0; i < gf2.properties.size(); ++i) {
    EXPECT_EQ(gf2.properties[i].increasing, gr2.properties[i].increasing);
    EXPECT_EQ(gf2.properties[i].decreasing, gr2.properties[i].decreasing);
  }
}

}  // namespace
}  // namespace adpm::constraint
