// Differential equivalence: optimized hot path vs. retained naive reference.
//
// "Verification of Concurrent Engineering Software Using CSM Models"
// (Mieścicki et al.) motivates keeping an optimized implementation provably
// equivalent to the specification-level one.  Here the specification is the
// pre-optimization code, retained verbatim as Propagator's referenceMode and
// the miner's Reference engine; these tests hold the zero-allocation
// propagator and the compiled-AD miner to *bit-identical* results — same
// PropagationResult, same GuidanceReport, and, the paper's reproduced cost
// metric, the same charged evaluation counts — across all four scenarios
// and a range of design states (initial, partially bound, violated).
#include <gtest/gtest.h>

#include "constraint/miner.hpp"
#include "constraint/propagate.hpp"
#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"

namespace adpm::constraint {
namespace {

std::vector<std::pair<std::string, dpm::ScenarioSpec>> allScenarios() {
  return {{"walkthrough", scenarios::walkthroughScenario()},
          {"receiver", scenarios::receiverScenario()},
          {"sensing", scenarios::sensingSystemScenario()},
          {"accelerometer", scenarios::accelerometerScenario()}};
}

void expectSamePropagation(const PropagationResult& a,
                           const PropagationResult& b) {
  ASSERT_EQ(a.hulls.size(), b.hulls.size());
  for (std::size_t i = 0; i < a.hulls.size(); ++i) {
    EXPECT_EQ(a.hulls[i], b.hulls[i]) << "hull " << i;
  }
  ASSERT_EQ(a.feasible.size(), b.feasible.size());
  for (std::size_t i = 0; i < a.feasible.size(); ++i) {
    EXPECT_EQ(a.feasible[i], b.feasible[i]) << "feasible " << i;
  }
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.passes, b.passes);
}

void expectSameGuidance(const GuidanceReport& a, const GuidanceReport& b) {
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.extraEvaluations, b.extraEvaluations);
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (std::size_t i = 0; i < a.properties.size(); ++i) {
    const PropertyGuidance& ga = a.properties[i];
    const PropertyGuidance& gb = b.properties[i];
    EXPECT_EQ(ga.id, gb.id);
    EXPECT_EQ(ga.feasible, gb.feasible) << "feasible subspace, property " << i;
    EXPECT_EQ(ga.relativeFeasibleSize, gb.relativeFeasibleSize)
        << "relative size, property " << i;
    EXPECT_EQ(ga.beta, gb.beta) << "beta, property " << i;
    EXPECT_EQ(ga.alpha, gb.alpha) << "alpha, property " << i;
    EXPECT_EQ(ga.increasing, gb.increasing) << "increasing, property " << i;
    EXPECT_EQ(ga.decreasing, gb.decreasing) << "decreasing, property " << i;
    EXPECT_EQ(ga.repairVotesUp, gb.repairVotesUp);
    EXPECT_EQ(ga.repairVotesDown, gb.repairVotesDown);
  }
}

/// One managed instance per code path; scenario instantiation is
/// deterministic, so the two networks start out identical.
struct Pair {
  dpm::DesignProcessManager fast;
  dpm::DesignProcessManager reference;

  explicit Pair(const dpm::ScenarioSpec& spec) {
    dpm::instantiate(spec, fast);
    dpm::instantiate(spec, reference);
  }

  Network& fastNet() { return fast.network(); }
  Network& refNet() { return reference.network(); }

  void bindBoth(std::size_t propertyIndex, double v) {
    fastNet().bind(PropertyId{static_cast<std::uint32_t>(propertyIndex)}, v);
    refNet().bind(PropertyId{static_cast<std::uint32_t>(propertyIndex)}, v);
  }

  /// Runs propagation + mining through both paths on the current state and
  /// asserts identical results and identical charged evaluations.  Mines
  /// twice on the fast side so the generation-keyed cache (hit on the
  /// second mine) is held to the same equivalence.
  void check(const std::string& label) {
    SCOPED_TRACE(label);
    Propagator fastProp;
    Propagator refProp{Propagator::Options{.referenceMode = true}};
    HeuristicMiner fastMiner{
        HeuristicMiner::Options{.engine = MinerEngine::Fast}};
    HeuristicMiner refMiner{HeuristicMiner::Options{
        .propagation = {.referenceMode = true},
        .engine = MinerEngine::Reference}};

    fastNet().resetEvaluationCount();
    refNet().resetEvaluationCount();

    const PropagationResult pf = fastProp.run(fastNet());
    const PropagationResult pr = refProp.run(refNet());
    expectSamePropagation(pf, pr);
    EXPECT_EQ(fastNet().evaluationCount(), refNet().evaluationCount());

    const GuidanceReport gf = fastMiner.mine(fastNet(), pf);
    const GuidanceReport gr = refMiner.mine(refNet(), pr);
    expectSameGuidance(gf, gr);
    EXPECT_EQ(fastNet().evaluationCount(), refNet().evaluationCount())
        << "charged evaluations diverged during mining";

    // Second mine over the unchanged box: the fast engine answers from its
    // cache; the report and the charges must not change shape.
    const std::size_t chargedBefore = fastNet().evaluationCount();
    const std::size_t refChargedBefore = refNet().evaluationCount();
    const GuidanceReport gf2 = fastMiner.mine(fastNet(), pf);
    const GuidanceReport gr2 = refMiner.mine(refNet(), pr);
    expectSameGuidance(gf2, gr2);
    expectSameGuidance(gf2, gf);
    EXPECT_EQ(fastNet().evaluationCount() - chargedBefore,
              refNet().evaluationCount() - refChargedBefore);
  }
};

TEST(Differential, InitialStateAllScenarios) {
  for (auto& [name, spec] : allScenarios()) {
    Pair pair(spec);
    pair.check(name + "/initial");
  }
}

TEST(Differential, MidRangeBindingsAllScenarios) {
  for (auto& [name, spec] : allScenarios()) {
    Pair pair(spec);
    // Bind every third unbound property to its hull midpoint — a plausible
    // partially-designed state with plenty of mixed statuses.
    Network& net = pair.fastNet();
    for (std::size_t i = 0; i < net.propertyCount(); i += 3) {
      const Property& p = net.property(PropertyId{static_cast<std::uint32_t>(i)});
      if (p.bound()) continue;
      pair.bindBoth(i, p.initial.hull().mid());
    }
    pair.check(name + "/mid-range");
  }
}

TEST(Differential, ViolatedStateAllScenarios) {
  for (auto& [name, spec] : allScenarios()) {
    Pair pair(spec);
    // Drive properties toward their extremes to manufacture violations (the
    // conventional-mode designer does exactly this kind of damage); the
    // miner's what-if re-propagation for bound violated properties is the
    // expensive path this exercises.
    Network& net = pair.fastNet();
    std::size_t boundCount = 0;
    for (std::size_t i = 0; i < net.propertyCount() && boundCount < 6; ++i) {
      const Property& p = net.property(PropertyId{static_cast<std::uint32_t>(i)});
      if (p.bound()) continue;
      const interval::Interval hull = p.initial.hull();
      pair.bindBoth(i, boundCount % 2 == 0 ? hull.hi() : hull.lo());
      ++boundCount;
    }
    pair.check(name + "/extremes");
  }
}

TEST(Differential, SinglePassAndNoShavingModes) {
  // The ablation configurations ride the same hot path; hold them to the
  // same equivalence on the scenario with discrete properties.
  for (auto& [name, spec] : allScenarios()) {
    Pair pair(spec);
    Propagator fastProp{
        Propagator::Options{.fixpoint = false, .filterDiscrete = false}};
    Propagator refProp{Propagator::Options{
        .fixpoint = false, .filterDiscrete = false, .referenceMode = true}};
    pair.fastNet().resetEvaluationCount();
    pair.refNet().resetEvaluationCount();
    const PropagationResult pf = fastProp.run(pair.fastNet());
    const PropagationResult pr = refProp.run(pair.refNet());
    SCOPED_TRACE(name);
    expectSamePropagation(pf, pr);
    EXPECT_EQ(pair.fastNet().evaluationCount(),
              pair.refNet().evaluationCount());
  }
}

}  // namespace
}  // namespace adpm::constraint
