#include "constraint/univariate.hpp"

#include <gtest/gtest.h>

namespace adpm::constraint {
namespace {

using expr::Expr;
using interval::Domain;
using interval::IntervalSet;

TEST(SolveUnivariate, SimpleBoundGivesOnePiece) {
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 10), "", {}});
  const ConstraintId c = net.addConstraint(
      "cap", net.var(x), Relation::Le, Expr::constant(4.0));
  const IntervalSet s = solveUnivariate(net, c, x);
  ASSERT_EQ(s.pieceCount(), 1u);
  EXPECT_NEAR(s.pieces()[0].lo(), 0.0, 1e-9);
  EXPECT_NEAR(s.pieces()[0].hi(), 4.0, 0.2);  // slice-resolution edge
}

TEST(SolveUnivariate, AbsWindowGivesTwoLobes) {
  // |x - 5| >= 3 over [0, 10]: lobes [0, 2] and [8, 10].
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 10), "", {}});
  const ConstraintId c = net.addConstraint(
      "away", expr::abs(net.var(x) - 5.0), Relation::Ge, Expr::constant(3.0));
  const IntervalSet s = solveUnivariate(net, c, x);
  ASSERT_EQ(s.pieceCount(), 2u);
  EXPECT_NEAR(s.pieces()[0].lo(), 0.0, 1e-9);
  EXPECT_NEAR(s.pieces()[0].hi(), 2.0, 0.2);
  EXPECT_NEAR(s.pieces()[1].lo(), 8.0, 0.2);
  EXPECT_NEAR(s.pieces()[1].hi(), 10.0, 1e-9);
  // The hull-based what-if would have reported [0, 10]; the set separates
  // the lobes.
  EXPECT_FALSE(s.contains(5.0));
}

TEST(SolveUnivariate, EvenPowerLobes) {
  // x^2 >= 9 over [-5, 5]: lobes [-5, -3] and [3, 5].
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(-5, 5), "", {}});
  const ConstraintId c = net.addConstraint(
      "sq", expr::sqr(net.var(x)), Relation::Ge, Expr::constant(9.0));
  const IntervalSet s = solveUnivariate(net, c, x);
  ASSERT_EQ(s.pieceCount(), 2u);
  EXPECT_LT(s.pieces()[0].hi(), -2.7);
  EXPECT_GT(s.pieces()[1].lo(), 2.7);
}

TEST(SolveUnivariate, UsesOtherPropertiesCurrentState) {
  // x + y <= 10 with y bound to 7: x in [0, 3].
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 10), "", {}});
  const PropertyId y = net.addProperty(
      {"y", "o", Domain::continuous(0, 10), "", {}});
  const ConstraintId c = net.addConstraint(
      "sum", net.var(x) + net.var(y), Relation::Le, Expr::constant(10.0));
  net.bind(y, 7.0);
  const IntervalSet s = solveUnivariate(net, c, x);
  ASSERT_EQ(s.pieceCount(), 1u);
  EXPECT_NEAR(s.pieces()[0].hi(), 3.0, 0.2);
}

TEST(SolveUnivariate, InfeasibleGivesEmptySet) {
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 10), "", {}});
  const ConstraintId c = net.addConstraint(
      "impossible", net.var(x), Relation::Ge, Expr::constant(20.0));
  EXPECT_TRUE(solveUnivariate(net, c, x).empty());
}

TEST(SolveUnivariate, DoesNotChargeEvaluations) {
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 10), "", {}});
  const ConstraintId c = net.addConstraint(
      "cap", net.var(x), Relation::Le, Expr::constant(4.0));
  const std::size_t before = net.evaluationCount();
  solveUnivariate(net, c, x);
  EXPECT_EQ(net.evaluationCount(), before);
}

}  // namespace
}  // namespace adpm::constraint
