#include "constraint/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::constraint {
namespace {

using expr::Expr;
using interval::Domain;
using interval::Interval;

Network makeReceiverToy() {
  // A miniature version of the paper's Section 2 receiver example:
  //   P_f + P_s <= P_M   (power budget)
  //   G_f * G_s >= G_min (gain product)
  Network net;
  net.addProperty({"P_f", "frontend", Domain::continuous(0, 200), "mW", {}});
  net.addProperty({"P_s", "deserializer", Domain::continuous(0, 200), "mW", {}});
  net.addProperty({"P_M", "system", Domain::continuous(100, 300), "mW", {}});
  net.addProperty({"G_f", "frontend", Domain::continuous(1, 20), "", {}});
  net.addProperty({"G_s", "deserializer", Domain::continuous(1, 20), "", {}});
  net.addProperty({"G_min", "system", Domain::continuous(10, 100), "", {}});

  const auto p = [&](std::uint32_t i) { return net.var(PropertyId{i}); };
  net.addConstraint("power", p(0) + p(1), Relation::Le, p(2));
  net.addConstraint("gain", p(3) * p(4), Relation::Ge, p(5));
  return net;
}

TEST(Network, AddAndLookup) {
  Network net = makeReceiverToy();
  EXPECT_EQ(net.propertyCount(), 6u);
  EXPECT_EQ(net.constraintCount(), 2u);

  const auto pf = net.findProperty("P_f");
  ASSERT_TRUE(pf.has_value());
  EXPECT_EQ(net.property(*pf).object, "frontend");
  EXPECT_EQ(net.property(*pf).unit, "mW");
  EXPECT_FALSE(net.findProperty("nope").has_value());

  const auto gain = net.findConstraint("gain");
  ASSERT_TRUE(gain.has_value());
  EXPECT_EQ(net.constraint(*gain).arguments().size(), 3u);
  EXPECT_FALSE(net.findConstraint("nope").has_value());
}

TEST(Network, DuplicateNamesRejected) {
  Network net = makeReceiverToy();
  EXPECT_THROW(
      net.addProperty({"P_f", "x", Domain::continuous(0, 1), "", {}}),
      adpm::InvalidArgumentError);
  EXPECT_THROW(net.addConstraint("power", net.var(PropertyId{0}), Relation::Le,
                                 net.var(PropertyId{1})),
               adpm::InvalidArgumentError);
}

TEST(Network, ConstraintOverUnknownPropertyRejected) {
  Network net;
  net.addProperty({"x", "o", Domain::continuous(0, 1), "", {}});
  EXPECT_THROW(net.addConstraint("bad", expr::Expr::variable(5), Relation::Le,
                                 expr::Expr::constant(0.0)),
               adpm::InvalidArgumentError);
}

TEST(Network, ConstraintsOfBuildsAdjacency) {
  Network net = makeReceiverToy();
  const auto& ofPf = net.constraintsOf(PropertyId{0});
  ASSERT_EQ(ofPf.size(), 1u);
  EXPECT_EQ(net.constraint(ofPf[0]).name(), "power");
  EXPECT_TRUE(net.constraintsOf(PropertyId{3}).size() == 1);
}

TEST(Network, BindingAffectsCurrentBox) {
  Network net = makeReceiverToy();
  auto box = net.currentBox();
  EXPECT_EQ(box[0], Interval(0, 200));

  net.bind(PropertyId{0}, 80.0);
  EXPECT_TRUE(net.property(PropertyId{0}).bound());
  box = net.currentBox();
  EXPECT_EQ(box[0], Interval(80.0));

  net.unbind(PropertyId{0});
  EXPECT_FALSE(net.property(PropertyId{0}).bound());
  EXPECT_EQ(net.currentBox()[0], Interval(0, 200));
}

TEST(Network, EvaluateClassifiesAndCounts) {
  Network net = makeReceiverToy();
  const ConstraintId power = *net.findConstraint("power");

  EXPECT_EQ(net.evaluationCount(), 0u);
  // Unbound: P_f + P_s in [0,400] vs P_M in [100,300]: consistent.
  EXPECT_EQ(net.evaluate(power), Status::Consistent);
  EXPECT_EQ(net.evaluationCount(), 1u);

  net.bind(PropertyId{0}, 50.0);
  net.bind(PropertyId{1}, 40.0);
  net.bind(PropertyId{2}, 100.0);
  EXPECT_EQ(net.evaluate(power), Status::Satisfied);

  net.bind(PropertyId{1}, 90.0);  // 50 + 90 > 100
  EXPECT_EQ(net.evaluate(power), Status::Violated);
  EXPECT_EQ(net.evaluationCount(), 3u);

  net.resetEvaluationCount();
  EXPECT_EQ(net.evaluationCount(), 0u);
}

TEST(Network, EvaluateBatch) {
  Network net = makeReceiverToy();
  const auto statuses = net.evaluate(net.constraintIds());
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(net.evaluationCount(), 2u);
}

TEST(Network, IdListsAreDense) {
  Network net = makeReceiverToy();
  const auto pids = net.propertyIds();
  ASSERT_EQ(pids.size(), 6u);
  for (std::uint32_t i = 0; i < pids.size(); ++i) EXPECT_EQ(pids[i].value, i);
  const auto cids = net.constraintIds();
  ASSERT_EQ(cids.size(), 2u);
}

TEST(Network, VarNamesExpressionAfterProperty) {
  Network net = makeReceiverToy();
  EXPECT_EQ(net.var(PropertyId{0}).str(), "P_f");
}

TEST(Network, AccessorsRejectBadIds) {
  Network net = makeReceiverToy();
  EXPECT_THROW(net.property(PropertyId{99}), adpm::InvalidArgumentError);
  EXPECT_THROW(net.constraint(ConstraintId{99}), adpm::InvalidArgumentError);
  EXPECT_THROW(net.constraintsOf(PropertyId{99}), adpm::InvalidArgumentError);
}

}  // namespace
}  // namespace adpm::constraint
