#include "constraint/propagate.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace adpm::constraint {
namespace {

using expr::Expr;
using interval::Domain;
using interval::Interval;

// The paper's Fig. 2 setting, reduced: an LNA with a load inductor and a
// differential pair, subject to gain / power / impedance requirements that
// carve out small feasible windows.
struct LnaFixture {
  Network net;
  PropertyId w;     // Diff-pair-W
  PropertyId l;     // Freq-ind
  PropertyId gain;  // LNA-gain
  PropertyId power; // LNA-power

  LnaFixture() {
    w = net.addProperty({"Diff-pair-W", "LNA+Mixer",
                         Domain::continuous(0.5, 10.0), "um", {"Transistor"}});
    l = net.addProperty({"Freq-ind", "LNA+Mixer",
                         Domain::continuous(0.05, 0.5), "uH", {"Transistor"}});
    gain = net.addProperty({"LNA-gain", "LNA+Mixer",
                            Domain::continuous(0.0, 500.0), "", {"Geometry"}});
    power = net.addProperty({"LNA-power", "LNA+Mixer",
                             Domain::continuous(0.0, 400.0), "mW",
                             {"Geometry"}});

    const Expr W = net.var(w);
    const Expr L = net.var(l);
    const Expr G = net.var(gain);
    const Expr P = net.var(power);

    // gain = 40 * W * L (first-order transconductance-load model)
    net.addConstraint("gain-model", G, Relation::Eq, 40.0 * W * L);
    // gain >= 50
    net.addConstraint("gain-spec", G, Relation::Ge, Expr::constant(50.0));
    // power = 20 * W
    net.addConstraint("power-model", P, Relation::Eq, 20.0 * W);
    // power <= 200
    net.addConstraint("power-spec", P, Relation::Le, Expr::constant(200.0));
  }
};

TEST(Propagator, NarrowsFeasibleSubspaces) {
  LnaFixture f;
  Propagator prop;
  const PropagationResult r = prop.run(f.net);

  EXPECT_FALSE(r.anyViolation());
  // power <= 200 and power = 20W imply W <= 10 (already) and W >= 50/(40*0.5)=2.5
  // via gain >= 50 with L <= 0.5.
  const Interval wh = r.hulls[f.w.value];
  EXPECT_NEAR(wh.lo(), 2.5, 1e-4);
  EXPECT_DOUBLE_EQ(wh.hi(), 10.0);
  // gain in [50, 40*10*0.5] = [50, 200].
  const Interval gh = r.hulls[f.gain.value];
  EXPECT_NEAR(gh.lo(), 50.0, 1e-3);
  EXPECT_NEAR(gh.hi(), 200.0, 1e-3);
  // power in [20*2.5, 200] = [50, 200].
  const Interval ph = r.hulls[f.power.value];
  EXPECT_NEAR(ph.lo(), 50.0, 1e-3);
  EXPECT_NEAR(ph.hi(), 200.0, 1e-3);
  EXPECT_GT(r.evaluations, 0u);
  EXPECT_EQ(f.net.evaluationCount(), r.evaluations);
}

TEST(Propagator, BindingPropagatesThroughModels) {
  LnaFixture f;
  f.net.bind(f.w, 4.0);
  Propagator prop;
  const PropagationResult r = prop.run(f.net);
  EXPECT_FALSE(r.anyViolation());
  // power = 80 exactly.
  EXPECT_NEAR(r.hulls[f.power.value].lo(), 80.0, 1e-4);
  EXPECT_NEAR(r.hulls[f.power.value].hi(), 80.0, 1e-4);
  // gain = 160 * L in [8, 80], clipped by gain >= 50 -> [50, 80].
  EXPECT_NEAR(r.hulls[f.gain.value].lo(), 50.0, 1e-4);
  EXPECT_NEAR(r.hulls[f.gain.value].hi(), 80.0, 1e-4);
  // L >= 50/160 = 0.3125.
  EXPECT_NEAR(r.hulls[f.l.value].lo(), 0.3125, 1e-5);
}

TEST(Propagator, DetectsViolationFromBoundValues) {
  LnaFixture f;
  f.net.bind(f.w, 9.0);  // power = 180 fine
  f.net.bind(f.power, 300.0);  // contradicts power-model AND power-spec
  Propagator prop;
  const PropagationResult r = prop.run(f.net);
  EXPECT_TRUE(r.anyViolation());
  const auto modelId = *f.net.findConstraint("power-model");
  const auto specId = *f.net.findConstraint("power-spec");
  EXPECT_TRUE(r.isViolated(modelId));
  EXPECT_TRUE(r.isViolated(specId));
  // The gain side of the network is untouched by the power conflict.
  EXPECT_FALSE(r.isViolated(*f.net.findConstraint("gain-spec")));
}

TEST(Propagator, ViolatedConstraintDoesNotPoisonDomains) {
  LnaFixture f;
  f.net.bind(f.power, 300.0);  // violates power-spec outright
  Propagator prop;
  const PropagationResult r = prop.run(f.net);
  EXPECT_TRUE(r.isViolated(*f.net.findConstraint("power-spec")));
  // W's feasible range must not be emptied by the violated spec; the
  // power-model equality ties W to 15, outside [0.5,10]... which makes the
  // model violated too, leaving W at its initial range.
  EXPECT_FALSE(r.feasible[f.w.value].empty());
}

TEST(Propagator, FeasibleDomainsRespectInitialShape) {
  Network net;
  const PropertyId n = net.addProperty(
      {"n-stages", "amp", Domain::discrete({1, 2, 3, 4, 5, 6}), "", {}});
  const PropertyId g = net.addProperty(
      {"gain", "amp", Domain::continuous(0, 100), "dB", {}});
  // gain = 12 * n_stages; gain <= 40  =>  n <= 3.33  =>  n in {1,2,3}.
  net.addConstraint("model", net.var(g), Relation::Eq, 12.0 * net.var(n));
  net.addConstraint("spec", net.var(g), Relation::Le, expr::Expr::constant(40.0));
  Propagator prop;
  const PropagationResult r = prop.run(net);
  ASSERT_TRUE(r.feasible[n.value].isDiscrete());
  EXPECT_EQ(r.feasible[n.value].values(), (std::vector<double>{1, 2, 3}));
}

TEST(Propagator, SinglePassDoesLessWorkThanFixpoint) {
  LnaFixture fixedpoint;
  LnaFixture single;
  Propagator full{Propagator::Options{.fixpoint = true}};
  Propagator once{Propagator::Options{.fixpoint = false}};
  const auto rFull = full.run(fixedpoint.net);
  const auto rOnce = once.run(single.net);
  EXPECT_LE(rOnce.evaluations, rFull.evaluations);
  // Single pass must still be sound: its hulls contain the fixpoint hulls.
  for (std::size_t i = 0; i < rFull.hulls.size(); ++i) {
    EXPECT_TRUE(rOnce.hulls[i].inflate(1e-9, 1e-9).contains(rFull.hulls[i]))
        << "var " << i;
  }
}

TEST(Propagator, RevisesAreBounded) {
  // A slowly-converging contraction must terminate via the revise cap.
  Network net;
  const PropertyId x = net.addProperty(
      {"x", "o", Domain::continuous(0, 1e9), "", {}});
  // x <= 0.999999 * x  only satisfiable at x = 0; bound convergence is slow.
  net.addConstraint("contract", net.var(x), Relation::Le,
                    0.999999 * net.var(x));
  Propagator prop{Propagator::Options{.maxRevisesPerConstraint = 50}};
  const auto r = prop.run(net);
  EXPECT_LE(r.evaluations, 50u);
}

TEST(Propagator, RunRelaxedRestoresInitialRange) {
  LnaFixture f;
  f.net.bind(f.w, 2.0);  // gain-spec forces W >= 2.5: W=2.0 conflicts
  Propagator prop;
  const auto strict = prop.run(f.net);
  // With W pinned at 2, gain = 80*L in [4,40] < 50: gain-spec or model
  // becomes violated.
  EXPECT_TRUE(strict.anyViolation());

  // Relaxing W shows the designer where W *could* go.
  const auto relaxed = prop.runRelaxed(f.net, f.w);
  EXPECT_FALSE(relaxed.anyViolation());
  EXPECT_NEAR(relaxed.hulls[f.w.value].lo(), 2.5, 1e-4);
}

TEST(Propagator, DiscreteShavingRemovesUnsupportedInteriorValues) {
  // gain = 12*n with gain required to be 24 or 60 exactly via two windows is
  // hard to express; instead: m = n*n with m <= 20 and m >= 5 leaves
  // n in {3, 4} — and also drops the *interior* value when a second
  // constraint excludes it: n != 3 via 12/n <= 3.5 (n >= 3.43).
  Network net;
  const PropertyId n = net.addProperty(
      {"n", "o", Domain::discrete({1, 2, 3, 4, 5, 6}), "", {}});
  const PropertyId m = net.addProperty(
      {"m", "o", Domain::continuous(0, 100), "", {}});
  net.addConstraint("square", net.var(m), Relation::Eq,
                    expr::sqr(net.var(n)));
  net.addConstraint("hi", net.var(m), Relation::Le, expr::Expr::constant(20.0));
  net.addConstraint("lo", net.var(m), Relation::Ge, expr::Expr::constant(5.0));
  net.addConstraint("ratio", 12.0 / net.var(n), Relation::Le,
                    expr::Expr::constant(3.5));

  Propagator prop;
  const auto r = prop.run(net);
  // Hull consistency gives n in [sqrt5, sqrt20] ~ [2.24, 4.47] -> {3, 4};
  // shaving against the ratio constraint removes 3.
  ASSERT_TRUE(r.feasible[n.value].isDiscrete());
  EXPECT_EQ(r.feasible[n.value].values(), (std::vector<double>{4}));
}

TEST(Propagator, DiscreteShavingCanBeDisabled) {
  Network net;
  const PropertyId n = net.addProperty(
      {"n", "o", Domain::discrete({1, 2, 3, 4}), "", {}});
  net.addConstraint("ratio", 12.0 / net.var(n), Relation::Le,
                    expr::Expr::constant(3.5));
  Propagator off{Propagator::Options{.filterDiscrete = false}};
  const auto r = off.run(net);
  // Interval projection on 12/n <= 3.5 narrows the hull to n >= 3.43,
  // which already drops {1,2,3}; with a multi-variable constraint the
  // difference shows, but here we just assert the toggle changes cost.
  Propagator on;
  Network net2;
  const PropertyId n2 = net2.addProperty(
      {"n", "o", Domain::discrete({1, 2, 3, 4}), "", {}});
  net2.addConstraint("ratio", 12.0 / net2.var(n2), Relation::Le,
                     expr::Expr::constant(3.5));
  const auto r2 = on.run(net2);
  EXPECT_LT(r.evaluations, r2.evaluations);  // shaving costs evaluations
  EXPECT_EQ(r2.feasible[n2.value].values(), (std::vector<double>{4}));
}

// Propagation soundness at network level: a full random solution that
// satisfies every constraint must survive propagation in every property's
// feasible hull.
class NetworkSoundness : public ::testing::TestWithParam<int> {};

TEST_P(NetworkSoundness, SolutionsSurvivePropagation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 90001);
  for (int iter = 0; iter < 50; ++iter) {
    // Random "budget tree": x0 = x1 + x2, x1 = x3 + x4, bounds on leaves.
    Network net;
    std::vector<PropertyId> pid;
    for (int i = 0; i < 5; ++i) {
      pid.push_back(net.addProperty({"x" + std::to_string(i), "o",
                                     Domain::continuous(0, 100), "", {}}));
    }
    net.addConstraint("sum0", net.var(pid[0]), Relation::Eq,
                      net.var(pid[1]) + net.var(pid[2]));
    net.addConstraint("sum1", net.var(pid[1]), Relation::Eq,
                      net.var(pid[3]) + net.var(pid[4]));
    const double cap = rng.uniform(40, 100);
    net.addConstraint("cap", net.var(pid[0]), Relation::Le,
                      expr::Expr::constant(cap));

    // Construct a witness solution.
    const double x3 = rng.uniform(0, cap / 4);
    const double x4 = rng.uniform(0, cap / 4);
    const double x2 = rng.uniform(0, cap / 2);
    const double x1 = x3 + x4;
    const double x0 = x1 + x2;

    Propagator prop;
    const auto r = prop.run(net);
    EXPECT_FALSE(r.anyViolation());
    const double witness[5] = {x0, x1, x2, x3, x4};
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(r.hulls[static_cast<std::size_t>(i)]
                      .inflate(1e-9, 1e-9)
                      .contains(witness[i]))
          << "var " << i << " witness " << witness[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSoundness, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adpm::constraint
