#include "constraint/constraint.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::constraint {
namespace {

using expr::Expr;
using interval::Interval;

Expr v(std::uint32_t id, const char* name) { return Expr::variable(id, name); }

TEST(Constraint, CanonicalResidualAndTarget) {
  // P_f + P_s <= P_M, the paper's running power-budget example.
  const Expr pf = v(0, "P_f");
  const Expr ps = v(1, "P_s");
  const Expr pm = v(2, "P_M");
  Constraint c(ConstraintId{0}, "power-budget", pf + ps, Relation::Le, pm);

  EXPECT_EQ(c.name(), "power-budget");
  EXPECT_EQ(c.relation(), Relation::Le);
  EXPECT_EQ(c.target(), Interval::nonPositive());
  EXPECT_EQ(c.arguments(),
            (std::vector<PropertyId>{PropertyId{0}, PropertyId{1},
                                     PropertyId{2}}));
  EXPECT_TRUE(c.involves(PropertyId{1}));
  EXPECT_FALSE(c.involves(PropertyId{3}));
  EXPECT_EQ(c.str(), "P_f + P_s <= P_M");
}

TEST(Constraint, TargetsByRelation) {
  const Expr x = v(0, "x");
  EXPECT_EQ(Constraint(ConstraintId{0}, "ge", x, Relation::Ge,
                       Expr::constant(0.0))
                .target(),
            Interval::nonNegative());
  EXPECT_EQ(Constraint(ConstraintId{0}, "eq", x, Relation::Eq,
                       Expr::constant(0.0))
                .target(),
            Interval(0.0));
}

TEST(Constraint, InvalidExpressionThrows) {
  EXPECT_THROW(Constraint(ConstraintId{0}, "bad", Expr{}, Relation::Le,
                          Expr::constant(0.0)),
               adpm::InvalidArgumentError);
}

TEST(Constraint, DeclaredHelpDirection) {
  const Expr x = v(0, "x");
  const Expr y = v(1, "y");
  Constraint c(ConstraintId{0}, "c", x + y, Relation::Le, Expr::constant(5.0));
  EXPECT_EQ(c.declaredHelpDirection(PropertyId{0}), 0);
  c.declareHelpDirection(PropertyId{0}, false);
  c.declareHelpDirection(PropertyId{1}, true);
  EXPECT_EQ(c.declaredHelpDirection(PropertyId{0}), -1);
  EXPECT_EQ(c.declaredHelpDirection(PropertyId{1}), 1);
  // Declaring for a non-argument property is a scenario bug.
  EXPECT_THROW(c.declareHelpDirection(PropertyId{9}, true),
               adpm::InvalidArgumentError);
}

TEST(Classify, ThreeValuedSemantics) {
  const Interval target = Interval::nonPositive();
  // Residual entirely <= 0: satisfied for all combinations.
  EXPECT_EQ(classify(Interval(-5, -1), target), Status::Satisfied);
  // Residual entirely > 0: violated for all combinations.
  EXPECT_EQ(classify(Interval(1, 5), target), Status::Violated);
  // Straddles: consistent (paper's Unknown).
  EXPECT_EQ(classify(Interval(-1, 1), target), Status::Consistent);
  // Boundary contact counts as overlap, hence not violated.
  EXPECT_EQ(classify(Interval(0, 5), target), Status::Consistent);
  EXPECT_EQ(classify(Interval(-5, 0), target), Status::Satisfied);
}

TEST(Classify, EqualityConstraint) {
  const Interval target(0.0);
  EXPECT_EQ(classify(Interval(0.0), target), Status::Satisfied);
  EXPECT_EQ(classify(Interval(-1, 1), target), Status::Consistent);
  EXPECT_EQ(classify(Interval(0.5, 1), target), Status::Violated);
}

TEST(StatusNames, Printable) {
  EXPECT_STREQ(statusName(Status::Satisfied), "Satisfied");
  EXPECT_STREQ(statusName(Status::Violated), "Violated");
  EXPECT_STREQ(statusName(Status::Consistent), "Consistent");
  EXPECT_STREQ(relationSymbol(Relation::Le), "<=");
  EXPECT_STREQ(relationSymbol(Relation::Ge), ">=");
  EXPECT_STREQ(relationSymbol(Relation::Eq), "==");
}

}  // namespace
}  // namespace adpm::constraint
