// Randomised end-to-end robustness: generate random multi-team scenarios
// that are solvable by construction (specs are carved around a known witness
// point with margin), then require both process flows to complete with a
// design that satisfies every constraint point-wise.
//
// This guards the whole stack — propagation soundness, miner guidance,
// designer heuristics, staleness bookkeeping — against shapes no hand-written
// scenario happens to exercise.
#include <gtest/gtest.h>

#include <cmath>

#include "dpm/scenario.hpp"
#include "expr/eval.hpp"
#include "teamsim/engine.hpp"
#include "util/rng.hpp"

#include "fuzz_scenario.hpp"

namespace adpm {
namespace {

using constraint::Relation;
using fuzz::GeneratedScenario;
using fuzz::generate;

class ScenarioFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioFuzz, BothFlowsCompleteSoundly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 62989);
  for (int iter = 0; iter < 6; ++iter) {
    const int teams = 2 + static_cast<int>(rng.index(2));
    const GeneratedScenario g = generate(rng, teams);
    ASSERT_TRUE(g.spec.validate().empty());

    // The witness must satisfy every constraint (generator sanity).
    for (const auto& c : g.spec.constraints) {
      const double residual =
          expr::evalPoint(c.lhs - c.rhs, g.witness);
      switch (c.rel) {
        case Relation::Le: ASSERT_LE(residual, 1e-9) << c.name; break;
        case Relation::Ge: ASSERT_GE(residual, -1e-9) << c.name; break;
        case Relation::Eq: ASSERT_NEAR(residual, 0.0, 1e-9) << c.name; break;
      }
    }

    for (const bool adpm : {true, false}) {
      teamsim::SimulationOptions options;
      options.adpm = adpm;
      options.seed = rng();
      options.maxOperations = 3000;
      teamsim::SimulationEngine engine(g.spec, options);

      // Drive stepwise so the miner's invariants can be checked mid-run.
      std::size_t checks = 0;
      while (!engine.complete() &&
             engine.operations() < options.maxOperations) {
        if (!engine.step()) break;
        const constraint::GuidanceReport* guide =
            engine.manager().latestGuidance();
        if (guide == nullptr || ++checks % 5 != 0) continue;
        auto& net = engine.manager().network();
        for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
          const auto& pg = guide->of(constraint::PropertyId{i});
          ASSERT_GE(pg.beta, pg.alpha) << "alpha exceeds beta";
          ASSERT_GE(pg.relativeFeasibleSize, 0.0);
          ASSERT_LE(pg.relativeFeasibleSize, 1.0);
          ASSERT_LE(pg.increasing.size() + pg.decreasing.size(),
                    static_cast<std::size_t>(pg.beta) * 2);
          ASSERT_LE(pg.repairVotesUp + pg.repairVotesDown, 2 * pg.alpha);
        }
      }
      const teamsim::SimulationResult r = engine.result();
      ASSERT_TRUE(r.completed)
          << "fuzz scenario (teams=" << teams << ", adpm=" << adpm
          << ") did not complete in " << r.operations << " ops";
      auto& net = engine.manager().network();
      for (const auto cid : net.constraintIds()) {
        EXPECT_NE(net.evaluate(cid), constraint::Status::Violated)
            << net.constraint(cid).name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace adpm
