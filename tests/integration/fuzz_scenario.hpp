// Shared random-scenario generator for the integration fuzz tests.
//
// Scenarios are solvable by construction: specs are carved around a known
// witness point with margin.  See fuzz_test.cpp for the invariants checked.
#pragma once

#include "dpm/scenario.hpp"
#include "expr/expr.hpp"
#include "interval/domain.hpp"
#include "util/rng.hpp"

namespace adpm::fuzz {

using constraint::Relation;
using interval::Domain;

struct GeneratedScenario {
  dpm::ScenarioSpec spec;
  std::vector<double> witness;  // property index -> witness value
};

/// Builds a random scenario: `teams` subsystems, each with a few free design
/// variables, derived properties defined by random monotone models over the
/// free variables, per-subsystem specs, and cross-subsystem budget
/// constraints over the derived properties.
inline GeneratedScenario generate(util::Rng& rng, int teams) {
  GeneratedScenario g;
  dpm::ScenarioSpec& s = g.spec;
  s.name = "fuzz";
  s.addObject("system");

  struct Team {
    std::vector<std::size_t> freeVars;
    std::vector<std::size_t> derived;
    std::vector<std::size_t> constraints;
    std::string object;
  };
  std::vector<Team> teamInfo;

  auto witnessOf = [&](std::size_t pi) { return g.witness[pi]; };

  for (int t = 0; t < teams; ++t) {
    Team team;
    team.object = "sub" + std::to_string(t);
    s.addObject(team.object, "system");

    const int freeCount = static_cast<int>(rng.range(2, 3));
    for (int f = 0; f < freeCount; ++f) {
      const double lo = rng.uniform(0.5, 2.0);
      const double hi = lo + rng.uniform(3.0, 10.0);
      const std::size_t pi = s.addProperty(
          "t" + std::to_string(t) + "_x" + std::to_string(f), team.object,
          Domain::continuous(lo, hi));
      team.freeVars.push_back(pi);
      // Witness strictly inside the range.
      g.witness.push_back(rng.uniform(lo + 0.2 * (hi - lo),
                                      hi - 0.2 * (hi - lo)));
    }

    const int derivedCount = static_cast<int>(rng.range(1, 2));
    for (int d = 0; d < derivedCount; ++d) {
      // Random monotone model over two of the team's free variables.
      const std::size_t a = team.freeVars[rng.index(team.freeVars.size())];
      const std::size_t b = team.freeVars[rng.index(team.freeVars.size())];
      const double ka = rng.uniform(0.5, 4.0);
      const double kb = rng.uniform(0.5, 4.0);
      expr::Expr model;
      double witnessValue = 0.0;
      switch (rng.index(3)) {
        case 0:  // weighted sum
          model = ka * s.pvar(a) + kb * s.pvar(b);
          witnessValue = ka * witnessOf(a) + kb * witnessOf(b);
          break;
        case 1:  // product
          model = ka * s.pvar(a) * s.pvar(b);
          witnessValue = ka * witnessOf(a) * witnessOf(b);
          break;
        default:  // saturating ratio
          model = ka * s.pvar(a) / (s.pvar(b) + 1.0);
          witnessValue = ka * witnessOf(a) / (witnessOf(b) + 1.0);
          break;
      }
      const std::size_t pi = s.addProperty(
          "t" + std::to_string(t) + "_y" + std::to_string(d), team.object,
          Domain::continuous(0.0, witnessValue * 4.0 + 10.0));
      g.witness.push_back(witnessValue);
      team.derived.push_back(pi);

      team.constraints.push_back(s.addConstraint(
          {"t" + std::to_string(t) + "_model" + std::to_string(d),
           s.pvar(pi), Relation::Eq, model, {}}));
      // A spec on the derived quantity, satisfied with ~40% margin.
      team.constraints.push_back(s.addConstraint(
          {"t" + std::to_string(t) + "_spec" + std::to_string(d),
           s.pvar(pi), Relation::Le,
           expr::Expr::constant(witnessValue * 1.4 + 1.0), {}}));
    }
    teamInfo.push_back(std::move(team));
  }

  // Cross-subsystem budget: the sum of one derived property per team stays
  // under a cap with margin.  The cap is a frozen requirement.
  expr::Expr sum;
  double witnessSum = 0.0;
  for (const Team& team : teamInfo) {
    const std::size_t pi = team.derived.front();
    sum = sum.valid() ? sum + s.pvar(pi) : s.pvar(pi);
    witnessSum += witnessOf(pi);
  }
  const std::size_t cap = s.addProperty(
      "cap", "system", Domain::continuous(witnessSum, witnessSum * 3.0 + 5.0));
  g.witness.push_back(witnessSum * 1.5 + 1.0);
  const std::size_t crossBudget = s.addConstraint(
      {"cross_budget", sum, Relation::Le, s.pvar(cap), {}});

  // Problems: top plus one per team, deferred children with generated
  // internal constraints.
  const std::size_t top = s.addProblem(
      {"Top", "system", "leader", {}, {cap}, {crossBudget},
       std::nullopt, {}, true});
  for (std::size_t t = 0; t < teamInfo.size(); ++t) {
    Team& team = teamInfo[t];
    std::vector<std::size_t> outputs = team.freeVars;
    outputs.insert(outputs.end(), team.derived.begin(), team.derived.end());
    const std::size_t prob = s.addProblem(
        {"P" + std::to_string(t), team.object,
         "designer" + std::to_string(t), {cap}, outputs, team.constraints,
         top, {}, false});
    for (const std::size_t ci : team.constraints) {
      s.constraints[ci].generatedBy = prob;
    }
  }
  s.require(cap, g.witness[cap]);
  return g;
}

}  // namespace adpm::fuzz
