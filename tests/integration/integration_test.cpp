// End-to-end integration tests: the paper's evaluation claims as assertions,
// run at reduced seed counts so they stay fast in CI (bench/ runs the full
// 60-seed protocol).
#include <gtest/gtest.h>

#include <sstream>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"
#include "teamsim/experiment.hpp"
#include "teamsim/export.hpp"

namespace adpm {
namespace {

constexpr std::size_t kSeeds = 12;

TEST(Integration, Fig9OperationShapes) {
  const teamsim::SimulationOptions base;
  const teamsim::Comparison sensing = teamsim::compareApproaches(
      scenarios::sensingSystemScenario(), base, kSeeds);
  const teamsim::Comparison receiver = teamsim::compareApproaches(
      scenarios::receiverScenario(), base, kSeeds);

  // Everything completes.
  EXPECT_EQ(sensing.adpm.completed, sensing.adpm.runs);
  EXPECT_EQ(sensing.conventional.completed, sensing.conventional.runs);
  EXPECT_EQ(receiver.adpm.completed, receiver.adpm.runs);
  EXPECT_EQ(receiver.conventional.completed, receiver.conventional.runs);

  // "At least twice as many operations ... using the conventional approach."
  EXPECT_GE(sensing.operationRatio(), 2.0);
  EXPECT_GE(receiver.operationRatio(), 2.0);

  // "ADPM's results were at least 3 times less variable."
  EXPECT_GE(sensing.variabilityRatio(), 3.0);
  EXPECT_GE(receiver.variabilityRatio(), 3.0);

  // ADPM spins are a small fraction of conventional's (paper: ~7% blended).
  const double blended =
      (sensing.adpm.spins.mean() + receiver.adpm.spins.mean()) /
      (sensing.conventional.spins.mean() +
       receiver.conventional.spins.mean());
  EXPECT_LT(blended, 0.25);
}

TEST(Integration, Fig9EvaluationShapes) {
  const teamsim::SimulationOptions base;
  const teamsim::Comparison sensing = teamsim::compareApproaches(
      scenarios::sensingSystemScenario(), base, kSeeds);
  const teamsim::Comparison receiver = teamsim::compareApproaches(
      scenarios::receiverScenario(), base, kSeeds);

  // ADPM consumes more evaluations in total...
  EXPECT_GT(sensing.evaluationRatio(), 1.0);
  EXPECT_GT(receiver.evaluationRatio(), 1.0);
  // ...and the per-operation penalty exceeds the total penalty.
  const double sPerOp = sensing.adpm.evaluationsPerOperation.mean() /
                        sensing.conventional.evaluationsPerOperation.mean();
  const double rPerOp = receiver.adpm.evaluationsPerOperation.mean() /
                        receiver.conventional.evaluationsPerOperation.mean();
  EXPECT_GT(sPerOp, sensing.evaluationRatio());
  EXPECT_GT(rPerOp, receiver.evaluationRatio());
}

TEST(Integration, Fig10TightnessRobustness) {
  std::vector<double> convMeans;
  std::vector<double> adpmMeans;
  for (const double gain : {22.0, 27.0, 31.0}) {
    scenarios::ReceiverConfig cfg;
    cfg.gainMin = gain;
    const teamsim::Comparison cmp = teamsim::compareApproaches(
        scenarios::receiverScenario(cfg), teamsim::SimulationOptions{},
        kSeeds);
    convMeans.push_back(cmp.conventional.operations.mean());
    adpmMeans.push_back(cmp.adpm.operations.mean());
  }
  // The conventional curve varies much more across the sweep.
  const double convRange =
      *std::max_element(convMeans.begin(), convMeans.end()) -
      *std::min_element(convMeans.begin(), convMeans.end());
  const double adpmRange =
      *std::max_element(adpmMeans.begin(), adpmMeans.end()) -
      *std::min_element(adpmMeans.begin(), adpmMeans.end());
  EXPECT_LT(adpmRange, convRange);
}

TEST(Integration, LargeTeamScenarioScalesTheStory) {
  const dpm::ScenarioSpec spec = scenarios::receiverLargeTeamScenario();
  EXPECT_TRUE(spec.validate().empty());
  EXPECT_EQ(spec.problems.size(), 4u);
  EXPECT_EQ(spec.objects.size(), 4u);
  // Same network, more owners.
  EXPECT_EQ(spec.properties.size(), 35u);
  EXPECT_EQ(spec.constraints.size(), 30u);

  const teamsim::Comparison cmp = teamsim::compareApproaches(
      spec, teamsim::SimulationOptions{}, kSeeds);
  EXPECT_EQ(cmp.adpm.completed, cmp.adpm.runs);
  EXPECT_EQ(cmp.conventional.completed, cmp.conventional.runs);
  // Splitting the team multiplies cross-subsystem couplings: the
  // conventional flow suffers at least as much as with three designers.
  EXPECT_GE(cmp.operationRatio(), 2.0);
  EXPECT_LT(cmp.spinRatio(), 0.25);
}

TEST(Integration, LargeTeamRoundTripsThroughDddl) {
  const dpm::ScenarioSpec spec = scenarios::receiverLargeTeamScenario();
  const dpm::ScenarioSpec reparsed = dddl::parse(dddl::write(spec));
  EXPECT_EQ(reparsed.problems.size(), spec.problems.size());
  EXPECT_EQ(reparsed.constraints.size(), spec.constraints.size());
}

TEST(Integration, CompletedDesignsSatisfyEveryConstraintPointwise) {
  // Soundness of the whole stack: when the engine reports completion, a
  // point evaluation of every constraint at the bound values must hold
  // (within the verification tolerance).  Checked across scenarios, modes
  // and seeds.
  for (const bool adpm : {false, true}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      for (int scenario = 0; scenario < 4; ++scenario) {
        const dpm::ScenarioSpec spec =
            scenario == 0   ? scenarios::sensingSystemScenario()
            : scenario == 1 ? scenarios::receiverScenario()
            : scenario == 2 ? scenarios::receiverLargeTeamScenario()
                            : scenarios::accelerometerScenario();
        teamsim::SimulationOptions options;
        options.adpm = adpm;
        options.seed = seed;
        teamsim::SimulationEngine engine(spec, options);
        const teamsim::SimulationResult r = engine.run();
        ASSERT_TRUE(r.completed)
            << spec.name << " adpm=" << adpm << " seed=" << seed;
        auto& net = engine.manager().network();
        for (const auto cid : net.constraintIds()) {
          EXPECT_NE(net.evaluate(cid), constraint::Status::Violated)
              << spec.name << " adpm=" << adpm << " seed=" << seed << " "
              << net.constraint(cid).name();
        }
      }
    }
  }
}

TEST(Integration, HistoryReplayMatchesFinalState) {
  // Replaying the journaled assignment deltas must reconstruct exactly the
  // final bound values of the network — the journal misses nothing.
  for (const bool adpm : {false, true}) {
    teamsim::SimulationOptions options;
    options.adpm = adpm;
    options.seed = 6;
    teamsim::SimulationEngine engine(scenarios::receiverScenario(), options);
    const auto r = engine.run();
    ASSERT_TRUE(r.completed);
    const auto& mgr = engine.manager();
    const auto& h = mgr.designHistory();
    for (const auto pid : mgr.network().propertyIds()) {
      const auto& p = mgr.network().property(pid);
      const auto replayed = h.valueAt(pid, h.stages());
      if (p.bound()) {
        ASSERT_TRUE(replayed.has_value()) << p.name;
        EXPECT_DOUBLE_EQ(*replayed, *p.value) << p.name;
      } else {
        EXPECT_FALSE(replayed.has_value()) << p.name;
      }
    }
  }
}

TEST(Integration, ExportedArtifactsAreConsistent) {
  teamsim::SimulationOptions options;
  options.adpm = true;
  options.seed = 5;
  teamsim::SimulationEngine adpmEngine(scenarios::walkthroughScenario(),
                                       options);
  adpmEngine.run();
  options.adpm = false;
  teamsim::SimulationEngine convEngine(scenarios::walkthroughScenario(),
                                       options);
  convEngine.run();

  std::ostringstream profile;
  teamsim::writeProfileCsv(profile, convEngine.trace(), adpmEngine.trace());
  // One data row per op of the longer (conventional) run.
  std::size_t newlines = 0;
  for (char c : profile.str()) newlines += (c == '\n');
  EXPECT_EQ(newlines, std::max(convEngine.trace().size(),
                               adpmEngine.trace().size()) + 1);

  const std::string script = teamsim::gnuplotProfileScript("profile.csv");
  EXPECT_NE(script.find("profile.csv"), std::string::npos);
}

}  // namespace
}  // namespace adpm
