// DDDL round-trip property: for random generated scenarios, write -> parse
// must preserve the spec *semantically* — identical structure, structurally
// equal constraint expressions, identical staging — and the reparsed
// scenario must simulate identically (same seed => same trace).
#include <gtest/gtest.h>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "teamsim/engine.hpp"
#include "util/rng.hpp"

#include "fuzz_scenario.hpp"

namespace adpm {
namespace {

class DddlRoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DddlRoundTripFuzz, WriteParsePreservesSemantics) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611);
  for (int iter = 0; iter < 5; ++iter) {
    const fuzz::GeneratedScenario g =
        fuzz::generate(rng, 2 + static_cast<int>(rng.index(2)));
    const std::string text = dddl::write(g.spec);
    const dpm::ScenarioSpec reparsed = dddl::parse(text);

    // Structure.
    ASSERT_EQ(reparsed.objects.size(), g.spec.objects.size());
    ASSERT_EQ(reparsed.properties.size(), g.spec.properties.size());
    ASSERT_EQ(reparsed.constraints.size(), g.spec.constraints.size());
    ASSERT_EQ(reparsed.problems.size(), g.spec.problems.size());
    ASSERT_EQ(reparsed.requirements.size(), g.spec.requirements.size());

    for (std::size_t i = 0; i < g.spec.properties.size(); ++i) {
      EXPECT_EQ(reparsed.properties[i].name, g.spec.properties[i].name);
      EXPECT_EQ(reparsed.properties[i].object, g.spec.properties[i].object);
      EXPECT_EQ(reparsed.properties[i].initial, g.spec.properties[i].initial);
    }
    for (std::size_t i = 0; i < g.spec.constraints.size(); ++i) {
      EXPECT_TRUE(
          reparsed.constraints[i].lhs.sameAs(g.spec.constraints[i].lhs))
          << g.spec.constraints[i].name;
      EXPECT_TRUE(
          reparsed.constraints[i].rhs.sameAs(g.spec.constraints[i].rhs))
          << g.spec.constraints[i].name;
      EXPECT_EQ(reparsed.constraints[i].rel, g.spec.constraints[i].rel);
      EXPECT_EQ(reparsed.constraints[i].generatedBy,
                g.spec.constraints[i].generatedBy)
          << g.spec.constraints[i].name;
    }
    for (std::size_t i = 0; i < g.spec.problems.size(); ++i) {
      EXPECT_EQ(reparsed.problems[i].outputs, g.spec.problems[i].outputs);
      EXPECT_EQ(reparsed.problems[i].constraints,
                g.spec.problems[i].constraints);
      EXPECT_EQ(reparsed.problems[i].startReady,
                g.spec.problems[i].startReady);
      EXPECT_EQ(reparsed.problems[i].owner, g.spec.problems[i].owner);
    }

    // Behavioural equivalence: identical seeded simulations.
    teamsim::SimulationOptions options;
    options.adpm = (iter % 2 == 0);
    options.seed = 17 + static_cast<std::uint64_t>(iter);
    teamsim::SimulationEngine a(g.spec, options);
    teamsim::SimulationEngine b(reparsed, options);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.operations, rb.operations);
    EXPECT_EQ(ra.evaluations, rb.evaluations);
    EXPECT_EQ(ra.spins, rb.spins);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DddlRoundTripFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace adpm
