#include <gtest/gtest.h>

#include "constraint/propagate.hpp"
#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "dpm/scenario.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"

namespace adpm::scenarios {
namespace {

TEST(SensingScenario, MatchesPaperScale) {
  const dpm::ScenarioSpec s = sensingSystemScenario();
  EXPECT_TRUE(s.validate().empty());
  // "up to 26 properties and 21 constraints"
  EXPECT_EQ(s.properties.size(), 26u);
  EXPECT_EQ(s.constraints.size(), 21u);
  EXPECT_EQ(s.problems.size(), 3u);
  EXPECT_EQ(s.requirements.size(), 4u);
}

TEST(ReceiverScenario, MatchesPaperScale) {
  const dpm::ScenarioSpec s = receiverScenario();
  EXPECT_TRUE(s.validate().empty());
  // "up to 35 properties and 30 constraints"
  EXPECT_EQ(s.properties.size(), 35u);
  EXPECT_EQ(s.constraints.size(), 30u);
  EXPECT_EQ(s.problems.size(), 3u);
  EXPECT_EQ(s.requirements.size(), 7u);
}

TEST(ReceiverScenario, MostConstraintsNonlinear) {
  // The paper calls the receiver case "harder": most constraints nonlinear.
  const dpm::ScenarioSpec s = receiverScenario();
  std::size_t nonlinear = 0;
  for (const auto& c : s.constraints) {
    // A constraint is nonlinear if its residual mentions mul/div/sqrt/
    // sqr/log/abs of variables.
    std::function<bool(const expr::Expr&)> hasNonlinearity =
        [&](const expr::Expr& e) -> bool {
      const expr::Node& n = e.node();
      switch (n.kind) {
        case expr::OpKind::Div:
        case expr::OpKind::Sqrt:
        case expr::OpKind::Sqr:
        case expr::OpKind::Pow:
        case expr::OpKind::Exp:
        case expr::OpKind::Log:
        case expr::OpKind::Abs:
          return !expr::variablesOf(e).empty();
        case expr::OpKind::Mul: {
          // Variable * variable is nonlinear; constant * variable is not.
          const bool leftVar = !expr::variablesOf(n.children[0]).empty();
          const bool rightVar = !expr::variablesOf(n.children[1]).empty();
          if (leftVar && rightVar) return true;
          break;
        }
        default:
          break;
      }
      for (const auto& ch : n.children) {
        if (hasNonlinearity(ch)) return true;
      }
      return false;
    };
    if (hasNonlinearity(c.lhs - c.rhs)) ++nonlinear;
  }
  EXPECT_GT(nonlinear * 2, s.constraints.size());  // more than half
}

class ScenarioFeasibility
    : public ::testing::TestWithParam<const char*> {};

dpm::ScenarioSpec scenarioByName(const std::string& name) {
  if (name == "sensing") return sensingSystemScenario();
  if (name == "receiver") return receiverScenario();
  if (name == "receiver4") return receiverLargeTeamScenario();
  if (name == "accelerometer") return accelerometerScenario();
  return walkthroughScenario();
}

TEST_P(ScenarioFeasibility, InitialRequirementsAdmitSolutions) {
  const dpm::ScenarioSpec spec = scenarioByName(GetParam());
  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);

  constraint::Propagator prop;
  const auto r = prop.run(mgr.network());
  EXPECT_FALSE(r.anyViolation())
      << "scenario '" << spec.name << "' is infeasible out of the box";
  // Every unbound property keeps a non-empty feasible subspace.
  for (std::uint32_t i = 0; i < mgr.network().propertyCount(); ++i) {
    EXPECT_FALSE(r.feasible[i].empty())
        << spec.name << ": empty feasible subspace for "
        << mgr.network().property(constraint::PropertyId{i}).name;
  }
}

TEST_P(ScenarioFeasibility, RoundTripsThroughDddl) {
  const dpm::ScenarioSpec spec = scenarioByName(GetParam());
  const std::string text = dddl::write(spec);
  const dpm::ScenarioSpec reparsed = dddl::parse(text);
  EXPECT_EQ(reparsed.properties.size(), spec.properties.size());
  EXPECT_EQ(reparsed.constraints.size(), spec.constraints.size());
  EXPECT_EQ(reparsed.problems.size(), spec.problems.size());
  EXPECT_EQ(reparsed.requirements.size(), spec.requirements.size());
  for (std::size_t i = 0; i < spec.constraints.size(); ++i) {
    EXPECT_TRUE(reparsed.constraints[i].lhs.sameAs(spec.constraints[i].lhs))
        << spec.constraints[i].name;
    EXPECT_EQ(reparsed.constraints[i].monotone, spec.constraints[i].monotone);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ScenarioFeasibility,
                         ::testing::Values("sensing", "receiver", "receiver4",
                                           "accelerometer", "walkthrough"));

TEST(AccelerometerScenario, Scale) {
  const dpm::ScenarioSpec s = accelerometerScenario();
  EXPECT_TRUE(s.validate().empty());
  EXPECT_EQ(s.properties.size(), 20u);
  EXPECT_EQ(s.constraints.size(), 14u);
  EXPECT_EQ(s.problems.size(), 3u);
  EXPECT_EQ(s.requirements.size(), 5u);
}

TEST(WalkthroughScenario, StoryBeatsReproduce) {
  const dpm::ScenarioSpec spec = walkthroughScenario();
  const WalkthroughIds ids = walkthroughIds(spec);
  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);

  // Beam length must sit near 13 um to hit the channel (Fc within 122±3).
  constraint::Propagator prop;
  auto r = prop.run(mgr.network());
  const auto beamHull =
      r.hulls[static_cast<std::uint32_t>(ids.beamLength)];
  EXPECT_NEAR(beamHull.lo(), 12.83, 0.05);
  EXPECT_NEAR(beamHull.hi(), 13.16, 0.05);

  // Fig. 2: the inductor's feasible window is relatively the smallest.
  const auto wHull = r.hulls[static_cast<std::uint32_t>(ids.diffPairW)];
  EXPECT_NEAR(wHull.lo(), 2.5, 0.01);
  EXPECT_NEAR(wHull.hi(), 3.698, 0.01);
  const auto lHull = r.hulls[static_cast<std::uint32_t>(ids.freqInd)];
  EXPECT_NEAR(lHull.hi(), 0.5, 1e-5);
  EXPECT_GT(lHull.lo(), 0.15);
  EXPECT_LT(lHull.lo(), 0.21);
}

TEST(ReceiverScenario, GainTightnessShrinksFeasibility) {
  // Fig. 10's x axis: tightening the gain requirement shrinks the feasible
  // region but keeps the scenario solvable across the sweep.
  for (double gain : {20.0, 24.0, 28.0, 32.0}) {
    ReceiverConfig cfg;
    cfg.gainMin = gain;
    const dpm::ScenarioSpec spec = receiverScenario(cfg);
    dpm::DesignProcessManager mgr(
        dpm::DesignProcessManager::Options{.adpm = true});
    dpm::instantiate(spec, mgr);
    constraint::Propagator prop;
    const auto r = prop.run(mgr.network());
    EXPECT_FALSE(r.anyViolation()) << "gainMin=" << gain;
  }
}

}  // namespace
}  // namespace adpm::scenarios
