// The committed DDDL snapshots under scenarios/ must stay in sync with the
// C++ scenario builders: parsing a snapshot must produce a spec that is
// structurally identical and simulates identically.  Regenerate with
//   ./build/examples/dddl_tool dump <name> > scenarios/<name>.dddl
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dddl/parser.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"
#include "teamsim/engine.hpp"

namespace adpm {
namespace {

std::string snapshotDir() {
  // CTest runs with the build tree as working directory; the snapshots live
  // in the source tree.  ADPM_SOURCE_DIR is injected by tests/CMakeLists.
#ifdef ADPM_SOURCE_DIR
  return std::string(ADPM_SOURCE_DIR) + "/scenarios/";
#else
  return "scenarios/";
#endif
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Case {
  const char* file;
  dpm::ScenarioSpec spec;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  out.push_back({"sensing.dddl", scenarios::sensingSystemScenario()});
  out.push_back({"receiver.dddl", scenarios::receiverScenario()});
  out.push_back({"receiver4.dddl", scenarios::receiverLargeTeamScenario()});
  out.push_back({"accelerometer.dddl", scenarios::accelerometerScenario()});
  out.push_back({"walkthrough.dddl", scenarios::walkthroughScenario()});
  return out;
}

TEST(DddlSnapshots, MatchTheBuilders) {
  for (const Case& c : cases()) {
    const auto text = readFile(snapshotDir() + c.file);
    ASSERT_TRUE(text.has_value()) << "missing snapshot " << c.file;
    const dpm::ScenarioSpec parsed = dddl::parse(*text);

    ASSERT_EQ(parsed.properties.size(), c.spec.properties.size()) << c.file;
    ASSERT_EQ(parsed.constraints.size(), c.spec.constraints.size()) << c.file;
    ASSERT_EQ(parsed.problems.size(), c.spec.problems.size()) << c.file;
    for (std::size_t i = 0; i < c.spec.properties.size(); ++i) {
      EXPECT_EQ(parsed.properties[i].name, c.spec.properties[i].name)
          << c.file;
      EXPECT_EQ(parsed.properties[i].initial, c.spec.properties[i].initial)
          << c.file << " " << c.spec.properties[i].name;
      EXPECT_EQ(parsed.properties[i].preference,
                c.spec.properties[i].preference)
          << c.file << " " << c.spec.properties[i].name;
    }
    for (std::size_t i = 0; i < c.spec.constraints.size(); ++i) {
      EXPECT_TRUE(parsed.constraints[i].lhs.sameAs(c.spec.constraints[i].lhs))
          << c.file << " " << c.spec.constraints[i].name;
      EXPECT_EQ(parsed.constraints[i].generatedBy,
                c.spec.constraints[i].generatedBy)
          << c.file << " " << c.spec.constraints[i].name;
    }

    // Behavioural identity: same seed, same run.
    teamsim::SimulationOptions options;
    options.seed = 11;
    teamsim::SimulationEngine a(c.spec, options);
    teamsim::SimulationEngine b(parsed, options);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.operations, rb.operations) << c.file;
    EXPECT_EQ(ra.evaluations, rb.evaluations) << c.file;
  }
}

}  // namespace
}  // namespace adpm
