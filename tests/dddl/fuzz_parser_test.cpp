// Parser robustness under mutation: random corruptions of a valid scenario
// must either parse (if the mutation happens to stay valid) or throw
// adpm::ParseError / adpm::InvalidArgumentError — never crash, hang, or
// throw anything else.
#include <gtest/gtest.h>

#include <string>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "scenarios/walkthrough.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::dddl {
namespace {

std::string mutate(std::string text, util::Rng& rng) {
  if (text.empty()) return text;
  const int kind = static_cast<int>(rng.index(5));
  const std::size_t pos = rng.index(text.size());
  static const char kBytes[] =
      "{}[]();:,=+-*/^<>\"abcdefgXYZ0123456789. \n";
  const char b = kBytes[rng.index(sizeof(kBytes) - 1)];
  switch (kind) {
    case 0:  // flip one character
      text[pos] = b;
      break;
    case 1:  // delete one character
      text.erase(pos, 1);
      break;
    case 2:  // insert one character
      text.insert(pos, 1, b);
      break;
    case 3: {  // delete a whole chunk
      const std::size_t len = 1 + rng.index(40);
      text.erase(pos, std::min(len, text.size() - pos));
      break;
    }
    default: {  // duplicate a chunk elsewhere
      const std::size_t len = 1 + rng.index(20);
      const std::string chunk = text.substr(pos, len);
      text.insert(rng.index(text.size()), chunk);
      break;
    }
  }
  return text;
}

class ParserMutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserMutationFuzz, NeverCrashesOnCorruptedInput) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 15101);
  const std::string pristine = write(scenarios::walkthroughScenario());

  for (int iter = 0; iter < 400; ++iter) {
    std::string text = pristine;
    const int mutations = 1 + static_cast<int>(rng.index(8));
    for (int m = 0; m < mutations; ++m) text = mutate(std::move(text), rng);

    try {
      const dpm::ScenarioSpec spec = parse(text);
      // If it parsed, it must also validate (parse() runs validate()).
      EXPECT_TRUE(spec.validate().empty());
    } catch (const adpm::ParseError&) {
      // expected for most mutations
    } catch (const adpm::InvalidArgumentError&) {
      // e.g. duplicate names introduced by a duplicated chunk
    }
    // Any other exception type or a crash fails the test by escaping.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationFuzz,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace adpm::dddl
