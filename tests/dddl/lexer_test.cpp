#include "dddl/lexer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::dddl {
namespace {

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::End);
}

TEST(Lexer, IdentifiersAndStrings) {
  const auto toks = lex(R"(scenario "Diff-pair-W" _x a.b)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[0].text, "scenario");
  EXPECT_EQ(toks[1].kind, TokenKind::String);
  EXPECT_EQ(toks[1].text, "Diff-pair-W");
  EXPECT_EQ(toks[2].text, "_x");
  EXPECT_EQ(toks[3].text, "a.b");
}

TEST(Lexer, Numbers) {
  const auto toks = lex("0 3.5 1e3 2.5e-2 .75");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_DOUBLE_EQ(toks[0].number, 0.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].number, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].number, 0.75);
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto toks = lex("{ } [ ] ( ) , ; : = + - * / ^ <= >= ==");
  const TokenKind expected[] = {
      TokenKind::LBrace, TokenKind::RBrace, TokenKind::LBracket,
      TokenKind::RBracket, TokenKind::LParen, TokenKind::RParen,
      TokenKind::Comma, TokenKind::Semicolon, TokenKind::Colon,
      TokenKind::Assign, TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
      TokenKind::Slash, TokenKind::Caret, TokenKind::Le, TokenKind::Ge,
      TokenKind::EqEq, TokenKind::End};
  ASSERT_EQ(toks.size(), std::size(expected));
  for (std::size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lex("a // comment with , symbols <= \nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("ab\n  cd");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnterminatedStringThrows) {
  try {
    lex("x \"abc");
    FAIL() << "expected ParseError";
  } catch (const adpm::ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(Lexer, StrayCharacterThrows) {
  EXPECT_THROW(lex("a ? b"), adpm::ParseError);
  EXPECT_THROW(lex("a < b"), adpm::ParseError);   // strict < unsupported
  EXPECT_THROW(lex("a > b"), adpm::ParseError);
}

TEST(Lexer, TokenKindNamesPrintable) {
  EXPECT_STREQ(tokenKindName(TokenKind::Le), "'<='");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
}

}  // namespace
}  // namespace adpm::dddl
