#include "dddl/parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dddl/writer.hpp"
#include "dpm/manager.hpp"
#include "expr/eval.hpp"
#include "util/error.hpp"

namespace adpm::dddl {
namespace {

// The DDDL fragment the paper alludes to (filter-loss monotonicity) embedded
// in a complete mini scenario.
constexpr const char* kFilterScenario = R"dddl(
scenario "mems-filter" {
  object system;
  object filter parent system;

  property "Resonator-L" : filter range [8, 20] unit "um"
    levels { Device, Geometry };
  property "Beam-W" : filter range [1, 4] unit "um";
  property "Insertion-loss" : filter range [0, 30] unit "dB";
  property "Max-loss" : system range [1, 25] unit "dB";

  constraint "FilterLoss-C4" :
      "Insertion-loss" == 40 * "Beam-W" / "Resonator-L" {
    monotone decreasing in "Resonator-L";   // longer resonator -> less loss
    monotone increasing in "Beam-W";
  }
  constraint "LossSpec-C5" : "Insertion-loss" <= "Max-loss";

  problem Filter : filter owner "device-engineer" {
    outputs { "Resonator-L", "Beam-W", "Insertion-loss" }
    constraints { "FilterLoss-C4", "LossSpec-C5" }
  }

  require "Max-loss" = 12;
}
)dddl";

TEST(Parser, ParsesCompleteScenario) {
  const dpm::ScenarioSpec s = parse(kFilterScenario);
  EXPECT_EQ(s.name, "mems-filter");
  EXPECT_EQ(s.objects.size(), 2u);
  EXPECT_EQ(s.objects[1].parent, "system");
  ASSERT_EQ(s.properties.size(), 4u);
  EXPECT_EQ(s.properties[0].name, "Resonator-L");
  EXPECT_EQ(s.properties[0].unit, "um");
  EXPECT_EQ(s.properties[0].levels,
            (std::vector<std::string>{"Device", "Geometry"}));
  EXPECT_EQ(s.properties[0].initial.hull().lo(), 8.0);
  ASSERT_EQ(s.constraints.size(), 2u);
  EXPECT_EQ(s.constraints[0].rel, constraint::Relation::Eq);
  ASSERT_EQ(s.constraints[0].monotone.size(), 2u);
  EXPECT_EQ(s.constraints[0].monotone[0],
            (std::pair<std::size_t, bool>{0, false}));
  EXPECT_EQ(s.constraints[0].monotone[1],
            (std::pair<std::size_t, bool>{1, true}));
  ASSERT_EQ(s.problems.size(), 1u);
  EXPECT_EQ(s.problems[0].owner, "device-engineer");
  EXPECT_EQ(s.problems[0].outputs.size(), 3u);
  ASSERT_EQ(s.requirements.size(), 1u);
  EXPECT_EQ(s.requirements[0].value, 12.0);
}

TEST(Parser, ParsedExpressionEvaluates) {
  const dpm::ScenarioSpec s = parse(kFilterScenario);
  // Insertion-loss == 40 * Beam-W / Resonator-L: residual at (L=10, W=2,
  // loss=8, max=12) must be 8 - 40*2/10 = 0.
  const expr::Expr residual = s.constraints[0].lhs - s.constraints[0].rhs;
  const double v = expr::evalPoint(residual, {{10.0, 2.0, 8.0, 12.0}});
  EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Parser, DiscreteSetsAndExpressionsWithFunctions) {
  const dpm::ScenarioSpec s = parse(R"dddl(
scenario fns {
  object o;
  property n : o set { 1, 2, 4, 8 };
  property x : o range [0.5, 4];
  property y : o range [-10, 10];
  constraint c1 : sqrt(x) + sqr(y) <= 20;
  constraint c2 : min(x, n) >= 0.5;
  constraint c3 : abs(y) * exp(x / 4) <= 30;
  constraint c4 : log(x) + x^2 - x^-1 <= 16;
  problem p : o { outputs { n, x, y } constraints { c1, c2, c3, c4 } }
}
)dddl");
  ASSERT_TRUE(s.properties[0].initial.isDiscrete());
  EXPECT_EQ(s.properties[0].initial.count(), 4u);
  EXPECT_EQ(s.constraints.size(), 4u);
  // c4 exercises pow with negative exponent: residual at x = 2, others 0.
  const expr::Expr r4 = s.constraints[3].lhs - s.constraints[3].rhs;
  EXPECT_NEAR(expr::evalPoint(r4, {{0.0, 2.0, 0.0}}),
              std::log(2.0) + 4.0 - 0.5 - 16.0, 1e-12);
}

TEST(Parser, ProblemOrderingAndDeferred) {
  const dpm::ScenarioSpec s = parse(R"dddl(
scenario ord {
  object o;
  property x : o range [0, 1];
  property y : o range [0, 1];
  problem first : o owner d { outputs { x } constraints { } }
  problem second : o owner d parent first after first {
    outputs { y }
    constraints { }
    deferred;
  }
}
)dddl");
  ASSERT_EQ(s.problems.size(), 2u);
  EXPECT_EQ(s.problems[1].parent, std::optional<std::size_t>{0});
  EXPECT_EQ(s.problems[1].predecessors, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(s.problems[1].startReady);
  EXPECT_TRUE(s.problems[0].startReady);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    parse("scenario x {\n  object o\n}");  // missing ';'
    FAIL() << "expected ParseError";
  } catch (const adpm::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Parser, UnknownReferencesAreRejected) {
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : ghost range [0,1]; })"),
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    constraint c : y <= 1; })"),
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1];
    problem p : o { outputs { nope } constraints { } } })"),
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1];
    constraint c : x <= 1 { monotone increasing in ghost; } })"),
               adpm::ParseError);
}

TEST(Parser, SyntaxErrorsAreRejected) {
  EXPECT_THROW(parse("nonsense"), adpm::ParseError);
  EXPECT_THROW(parse("scenario s { unknown_decl x; }"), adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [5, 1]; })"),  // inverted range
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1];
    constraint c : x ^ 1.5 <= 1; })"),  // fractional exponent
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1];
    constraint c : sqrt(x, x) <= 1; })"),  // wrong arity
               adpm::ParseError);
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1];
    constraint c : frob(x) <= 1; })"),  // unknown function
               adpm::ParseError);
}

TEST(Parser, OperatorPrecedence) {
  const dpm::ScenarioSpec s = parse(R"dddl(
scenario prec {
  object o;
  property a : o range [0, 10];
  property b : o range [0, 10];
  property c : o range [0, 10];
  constraint k : a + b * c - -a / 2 <= 100;
  problem p : o { outputs { a, b, c } constraints { k } }
}
)dddl");
  const expr::Expr lhs = s.constraints[0].lhs;
  // a=2, b=3, c=4: 2 + 12 - (-2/2) = 15.
  EXPECT_NEAR(expr::evalPoint(lhs, {{2.0, 3.0, 4.0}}), 15.0, 1e-12);
}

TEST(Writer, RoundTripsEquivalentSpec) {
  const dpm::ScenarioSpec original = parse(kFilterScenario);
  const std::string text = write(original);
  const dpm::ScenarioSpec reparsed = parse(text);

  EXPECT_EQ(reparsed.name, original.name);
  ASSERT_EQ(reparsed.objects.size(), original.objects.size());
  ASSERT_EQ(reparsed.properties.size(), original.properties.size());
  for (std::size_t i = 0; i < original.properties.size(); ++i) {
    EXPECT_EQ(reparsed.properties[i].name, original.properties[i].name);
    EXPECT_EQ(reparsed.properties[i].initial, original.properties[i].initial);
    EXPECT_EQ(reparsed.properties[i].unit, original.properties[i].unit);
    EXPECT_EQ(reparsed.properties[i].levels, original.properties[i].levels);
  }
  ASSERT_EQ(reparsed.constraints.size(), original.constraints.size());
  for (std::size_t i = 0; i < original.constraints.size(); ++i) {
    EXPECT_TRUE(reparsed.constraints[i].lhs.sameAs(original.constraints[i].lhs))
        << reparsed.constraints[i].lhs.str() << " vs "
        << original.constraints[i].lhs.str();
    EXPECT_EQ(reparsed.constraints[i].rel, original.constraints[i].rel);
    EXPECT_EQ(reparsed.constraints[i].monotone,
              original.constraints[i].monotone);
  }
  ASSERT_EQ(reparsed.problems.size(), original.problems.size());
  EXPECT_EQ(reparsed.problems[0].outputs, original.problems[0].outputs);
  ASSERT_EQ(reparsed.requirements.size(), original.requirements.size());
  EXPECT_EQ(reparsed.requirements[0].value, original.requirements[0].value);
}

TEST(Writer, QuotesNamesThatNeedIt) {
  dpm::ScenarioSpec s;
  s.name = "q";
  s.addObject("o");
  s.addProperty("Diff-pair-W", "o", interval::Domain::continuous(0, 1));
  s.addProperty("min", "o", interval::Domain::continuous(0, 1));  // keyword
  s.addProblem({"p", "o", "", {}, {0, 1}, {}, std::nullopt, {}, true});
  const std::string text = write(s);
  EXPECT_NE(text.find("\"Diff-pair-W\""), std::string::npos);
  EXPECT_NE(text.find("\"min\""), std::string::npos);
  // Round-trip still works.
  const auto reparsed = parse(text);
  EXPECT_EQ(reparsed.properties[1].name, "min");
}

TEST(Parser, PreferClauseSetsPropertyPreference) {
  const dpm::ScenarioSpec s = parse(R"dddl(
scenario pref {
  object o;
  property p1 : o range [0, 1] prefer low;
  property p2 : o range [0, 1] unit "mW" prefer high;
  property p3 : o range [0, 1];
  problem p : o { outputs { p1, p2, p3 } constraints { } }
}
)dddl");
  EXPECT_EQ(s.properties[0].preference, -1);
  EXPECT_EQ(s.properties[1].preference, 1);
  EXPECT_EQ(s.properties[2].preference, 0);
  // Round-trips.
  const dpm::ScenarioSpec r = parse(write(s));
  EXPECT_EQ(r.properties[0].preference, -1);
  EXPECT_EQ(r.properties[1].preference, 1);
  EXPECT_EQ(r.properties[2].preference, 0);
  // Bad direction is rejected.
  EXPECT_THROW(parse(R"(scenario s { object o;
    property x : o range [0,1] prefer sideways; })"),
               adpm::ParseError);
}

TEST(Parser, GeneratesClauseMarksStagedConstraints) {
  const dpm::ScenarioSpec s = parse(R"dddl(
scenario gen {
  object sys;
  object part parent sys;
  property cap : sys range [0, 100];
  property x : part range [0, 50];
  constraint spec : x <= cap;
  constraint model : x >= 1;
  problem Top : sys owner lead { outputs { cap } constraints { spec } }
  problem Part : part owner dev parent Top {
    outputs { x }
    constraints { model }
    generates { model }
    deferred;
  }
}
)dddl");
  ASSERT_EQ(s.constraints.size(), 2u);
  EXPECT_FALSE(s.constraints[0].generatedBy.has_value());
  EXPECT_EQ(s.constraints[1].generatedBy, std::optional<std::size_t>(1));
  EXPECT_FALSE(s.problems[1].startReady);

  // Round-trips through the writer.
  const dpm::ScenarioSpec reparsed = parse(write(s));
  EXPECT_EQ(reparsed.constraints[1].generatedBy,
            std::optional<std::size_t>(1));
  EXPECT_FALSE(reparsed.problems[1].startReady);
}

TEST(Parser, GeneratesRejectsUnknownConstraint) {
  EXPECT_THROW(parse(R"dddl(
scenario gen {
  object o;
  property x : o range [0, 1];
  problem p : o { outputs { x } constraints { } generates { ghost } }
}
)dddl"),
               adpm::ParseError);
}

TEST(ParsedScenario, InstantiatesIntoManager) {
  const dpm::ScenarioSpec s = parse(kFilterScenario);
  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(s, mgr);
  EXPECT_EQ(mgr.network().propertyCount(), 4u);
  EXPECT_EQ(mgr.network().constraintCount(), 2u);
  // Declared monotonicity is live on the instantiated constraint.
  const auto& c =
      mgr.network().constraint(constraint::ConstraintId{0});
  EXPECT_EQ(c.declaredHelpDirection(constraint::PropertyId{0}), -1);
  EXPECT_EQ(c.declaredHelpDirection(constraint::PropertyId{1}), 1);
}

}  // namespace
}  // namespace adpm::dddl
