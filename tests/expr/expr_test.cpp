#include "expr/expr.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::expr {
namespace {

TEST(Expr, InvalidByDefault) {
  Expr e;
  EXPECT_FALSE(e.valid());
  EXPECT_THROW(e.node(), adpm::InvalidArgumentError);
}

TEST(Expr, ConstantAndVariable) {
  const Expr c = Expr::constant(3.5);
  EXPECT_EQ(c.kind(), OpKind::Const);
  EXPECT_EQ(c.node().value, 3.5);

  const Expr v = Expr::variable(7, "width");
  EXPECT_EQ(v.kind(), OpKind::Var);
  EXPECT_EQ(v.node().var, 7u);
  EXPECT_EQ(v.node().name, "width");
}

TEST(Expr, OperatorsBuildExpectedShapes) {
  const Expr x = Expr::variable(0, "x");
  const Expr y = Expr::variable(1, "y");
  EXPECT_EQ((x + y).kind(), OpKind::Add);
  EXPECT_EQ((x - y).kind(), OpKind::Sub);
  EXPECT_EQ((x * y).kind(), OpKind::Mul);
  EXPECT_EQ((x / y).kind(), OpKind::Div);
  EXPECT_EQ((-x).kind(), OpKind::Neg);
  EXPECT_EQ(sqrt(x).kind(), OpKind::Sqrt);
  EXPECT_EQ(sqr(x).kind(), OpKind::Sqr);
  EXPECT_EQ(pow(x, 3).kind(), OpKind::Pow);
  EXPECT_EQ(pow(x, 3).node().exponent, 3);
  EXPECT_EQ(exp(x).kind(), OpKind::Exp);
  EXPECT_EQ(log(x).kind(), OpKind::Log);
  EXPECT_EQ(abs(x).kind(), OpKind::Abs);
  EXPECT_EQ(min(x, y).kind(), OpKind::Min);
  EXPECT_EQ(max(x, y).kind(), OpKind::Max);
}

TEST(Expr, ScalarOverloads) {
  const Expr x = Expr::variable(0, "x");
  const Expr e = 2.0 * x + 1.0;
  EXPECT_EQ(e.kind(), OpKind::Add);
  EXPECT_EQ(e.node().children[1].node().value, 1.0);
  EXPECT_EQ((x / 4.0).node().children[1].node().value, 4.0);
  EXPECT_EQ((3.0 - x).node().children[0].node().value, 3.0);
}

TEST(Expr, ArityIsEnforced) {
  EXPECT_THROW(Expr::make(OpKind::Add, {Expr::constant(1.0)}),
               adpm::InvalidArgumentError);
  EXPECT_THROW(Expr::make(OpKind::Sqrt, {}), adpm::InvalidArgumentError);
  EXPECT_THROW(Expr::make(OpKind::Add, {Expr::constant(1.0), Expr{}}),
               adpm::InvalidArgumentError);
}

TEST(Expr, VariablesOfDeduplicatesAndSorts) {
  const Expr x = Expr::variable(4, "x");
  const Expr y = Expr::variable(1, "y");
  const Expr e = x * y + x - y;
  EXPECT_EQ(variablesOf(e), (std::vector<VarId>{1, 4}));
  EXPECT_EQ(variableSpan(e), 5u);
  EXPECT_EQ(variableSpan(Expr::constant(1.0)), 0u);
}

TEST(Expr, Mentions) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr e = sqrt(x) + 2.0;
  EXPECT_TRUE(mentions(e, 0));
  EXPECT_FALSE(mentions(e, 1));
  EXPECT_TRUE(mentions(e + y, 1));
}

TEST(Expr, SameAsIsStructural) {
  const Expr x = Expr::variable(0, "x");
  const Expr a = 2.0 * x + 1.0;
  const Expr b = 2.0 * Expr::variable(0, "x") + 1.0;
  EXPECT_TRUE(a.sameAs(b));
  const Expr c = 2.0 * x + 2.0;
  EXPECT_FALSE(a.sameAs(c));
  EXPECT_FALSE(a.sameAs(x));
}

TEST(Expr, StrRendersReadableText) {
  const Expr x = Expr::variable(0, "x");
  const Expr y = Expr::variable(1, "y");
  EXPECT_EQ((x + y).str(), "x + y");
  EXPECT_EQ(((x + y) * x).str(), "(x + y) * x");
  EXPECT_EQ((x - (y - x)).str(), "x - (y - x)");
  EXPECT_EQ(sqrt(x).str(), "sqrt(x)");
  EXPECT_EQ(pow(x, 2).str(), "x^2");
  EXPECT_EQ(min(x, y).str(), "min(x, y)");
  EXPECT_EQ(Expr::variable(3).str(), "v3");  // unnamed fallback
}

TEST(Expr, OpNameAndArityTables) {
  EXPECT_STREQ(opName(OpKind::Mul), "mul");
  EXPECT_EQ(arity(OpKind::Const), 0);
  EXPECT_EQ(arity(OpKind::Neg), 1);
  EXPECT_EQ(arity(OpKind::Max), 2);
}

}  // namespace
}  // namespace adpm::expr
