#include "expr/eval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::expr {
namespace {

using interval::Interval;

TEST(EvalPoint, AllOperators) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const std::vector<double> v{2.0, 3.0};

  EXPECT_EQ(evalPoint(x + y, v), 5.0);
  EXPECT_EQ(evalPoint(x - y, v), -1.0);
  EXPECT_EQ(evalPoint(x * y, v), 6.0);
  EXPECT_NEAR(evalPoint(x / y, v), 2.0 / 3.0, 1e-15);
  EXPECT_EQ(evalPoint(-x, v), -2.0);
  EXPECT_EQ(evalPoint(sqr(x), v), 4.0);
  EXPECT_NEAR(evalPoint(sqrt(x), v), std::sqrt(2.0), 1e-15);
  EXPECT_EQ(evalPoint(pow(x, 3), v), 8.0);
  EXPECT_NEAR(evalPoint(exp(x), v), std::exp(2.0), 1e-12);
  EXPECT_NEAR(evalPoint(log(x), v), std::log(2.0), 1e-15);
  EXPECT_EQ(evalPoint(abs(-x), v), 2.0);
  EXPECT_EQ(evalPoint(min(x, y), v), 2.0);
  EXPECT_EQ(evalPoint(max(x, y), v), 3.0);
  EXPECT_EQ(evalPoint(Expr::constant(7.5), v), 7.5);
}

TEST(EvalPoint, OutOfRangeVariableThrows) {
  const Expr e = Expr::variable(5);
  const std::vector<double> v{1.0};
  EXPECT_THROW(evalPoint(e, v), adpm::InvalidArgumentError);
}

TEST(EvalInterval, MatchesIntervalAlgebra) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const std::vector<Interval> box{Interval(1, 2), Interval(3, 4)};

  EXPECT_EQ(evalInterval(x + y, box), Interval(4, 6));
  EXPECT_EQ(evalInterval(x * y, box), Interval(3, 8));
  EXPECT_EQ(evalInterval(sqr(x - y), box), Interval(1, 9));
}

TEST(EvalInterval, ConstantExprIgnoresBox) {
  EXPECT_EQ(evalInterval(Expr::constant(2.0) * Expr::constant(3.0), {}),
            Interval(6.0));
}

// Containment property: point evaluation at box corners/samples must lie
// inside the interval evaluation.
class EvalContainment : public ::testing::TestWithParam<int> {};

TEST_P(EvalContainment, RandomExpressionsRandomBoxes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);

  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr z = Expr::variable(2);
  // A grab-bag of realistic constraint shapes (power sums, gain products,
  // resonator-style ratios).
  const std::vector<Expr> exprs{
      x + y + z,
      x * y - z,
      (x + 1.5) * (y - 0.5),
      sqr(x) + sqr(y) - z,
      sqrt(abs(x)) * y,
      min(x, y) + max(y, z),
      x / (y + 10.0),
      exp(x * 0.1) - log(abs(z) + 1.0),
      pow(x, 3) / (sqr(y) + 1.0),
  };

  for (int iter = 0; iter < 500; ++iter) {
    std::vector<Interval> box;
    std::vector<double> pt;
    for (int i = 0; i < 3; ++i) {
      const double a = rng.uniform(-5, 5);
      const double b = rng.uniform(-5, 5);
      box.emplace_back(std::min(a, b), std::max(a, b));
      pt.push_back(rng.uniform(box.back().lo(), box.back().hi()));
    }
    for (const Expr& e : exprs) {
      const double v = evalPoint(e, pt);
      if (!std::isfinite(v)) continue;
      const Interval iv = evalInterval(e, box);
      // Allow tiny numeric slack at the bounds.
      EXPECT_TRUE(iv.inflate(1e-12, 1e-12).contains(v))
          << e.str() << " at (" << pt[0] << "," << pt[1] << "," << pt[2]
          << ") -> " << v << " not in " << iv.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalContainment, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adpm::expr
