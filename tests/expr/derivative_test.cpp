#include "expr/derivative.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "expr/compiled.hpp"
#include "expr/eval.hpp"
#include "expr/sweep.hpp"
#include "util/rng.hpp"

namespace adpm::expr {
namespace {

using interval::Interval;

TEST(Monotonicity, LinearTerms) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const std::vector<Interval> box{Interval(0, 10), Interval(0, 10)};

  EXPECT_EQ(monotonicity(x + y, box, 0), Direction::Increasing);
  EXPECT_EQ(monotonicity(x - y, box, 1), Direction::Decreasing);
  EXPECT_EQ(monotonicity(3.0 * x, box, 0), Direction::Increasing);
  EXPECT_EQ(monotonicity(-2.0 * x, box, 0), Direction::Decreasing);
  EXPECT_EQ(monotonicity(x + y, box, 5), Direction::None);
  EXPECT_EQ(monotonicity(Expr::constant(2.0) + 0.0 * x, box, 0),
            Direction::Constant);
}

TEST(Monotonicity, ProductDependsOnSigns) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  // y >= 0: x*y increasing in x.
  std::vector<Interval> boxPos{Interval(-5, 5), Interval(1, 3)};
  EXPECT_EQ(monotonicity(x * y, boxPos, 0), Direction::Increasing);
  // y <= 0: decreasing in x.
  std::vector<Interval> boxNeg{Interval(-5, 5), Interval(-3, -1)};
  EXPECT_EQ(monotonicity(x * y, boxNeg, 0), Direction::Decreasing);
  // y straddles 0: unknown.
  std::vector<Interval> boxMix{Interval(-5, 5), Interval(-1, 1)};
  EXPECT_EQ(monotonicity(x * y, boxMix, 0), Direction::Unknown);
}

TEST(Monotonicity, NonlinearShapes) {
  const Expr x = Expr::variable(0);
  // x^2 on positive range is increasing, straddling zero is unknown.
  EXPECT_EQ(monotonicity(sqr(x), {{Interval(1, 5)}}, 0),
            Direction::Increasing);
  EXPECT_EQ(monotonicity(sqr(x), {{Interval(-5, 5)}}, 0), Direction::Unknown);
  EXPECT_EQ(monotonicity(sqrt(x), {{Interval(1, 9)}}, 0),
            Direction::Increasing);
  EXPECT_EQ(monotonicity(1.0 / x, {{Interval(1, 5)}}, 0),
            Direction::Decreasing);
  EXPECT_EQ(monotonicity(exp(x), {{Interval(-3, 3)}}, 0),
            Direction::Increasing);
  EXPECT_EQ(monotonicity(log(x), {{Interval(0.5, 4)}}, 0),
            Direction::Increasing);
}

TEST(Monotonicity, ResonatorFrequencyShape) {
  // Clamped-beam frequency f ∝ t / L^2: increasing in thickness t,
  // decreasing in length L (the DDDL example in the paper declares filter
  // loss monotone decreasing in resonator length, increasing in beam width).
  const Expr t = Expr::variable(0);
  const Expr L = Expr::variable(1);
  const Expr f = 1.03e3 * t / sqr(L);
  const std::vector<Interval> box{Interval(1, 3), Interval(10, 20)};
  EXPECT_EQ(monotonicity(f, box, 0), Direction::Increasing);
  EXPECT_EQ(monotonicity(f, box, 1), Direction::Decreasing);
}

TEST(Monotonicity, MinMaxAndAbs) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  // min(x, 100): over [0,10] the min is always x -> increasing.
  EXPECT_EQ(
      monotonicity(min(x, Expr::constant(100.0)), {{Interval(0, 10)}}, 0),
      Direction::Increasing);
  // abs over positive box: increasing; straddling: unknown.
  EXPECT_EQ(monotonicity(abs(x), {{Interval(2, 5)}}, 0),
            Direction::Increasing);
  EXPECT_EQ(monotonicity(abs(x), {{Interval(-2, 5)}}, 0), Direction::Unknown);
  // max(x, y) w.r.t. x when x dominates.
  const std::vector<Interval> box{Interval(10, 20), Interval(0, 5)};
  EXPECT_EQ(monotonicity(max(x, y), box, 0), Direction::Increasing);
}

TEST(DirectionName, AllNamesPrintable) {
  EXPECT_STREQ(directionName(Direction::None), "none");
  EXPECT_STREQ(directionName(Direction::Constant), "constant");
  EXPECT_STREQ(directionName(Direction::Increasing), "increasing");
  EXPECT_STREQ(directionName(Direction::Decreasing), "decreasing");
  EXPECT_STREQ(directionName(Direction::Unknown), "unknown");
}

// Property: the AD derivative enclosure must contain the finite-difference
// slope between random sample points of the box.
class DerivativeContainment : public ::testing::TestWithParam<int> {};

TEST_P(DerivativeContainment, EncloseFiniteDifferences) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 5557);
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const std::vector<Expr> exprs{
      x * y + sqr(x),
      x / (y + 5.0),
      sqrt(x + 5.0) * y,
      exp(0.3 * x) - y,
      pow(x, 3) - 2.0 * x * y,
  };

  for (int iter = 0; iter < 300; ++iter) {
    const double xa = rng.uniform(-3, 3);
    const double xb = rng.uniform(-3, 3);
    const double yv = rng.uniform(-3, 3);
    const Interval X(std::min(xa, xb), std::max(xa, xb));
    if (X.width() < 1e-6) continue;
    const std::vector<Interval> box{X, Interval(yv)};

    for (const Expr& e : exprs) {
      const double fa = evalPoint(e, {{xa, yv}});
      const double fb = evalPoint(e, {{xb, yv}});
      if (!std::isfinite(fa) || !std::isfinite(fb)) continue;
      const double slope = (fb - fa) / (xb - xa);
      const Interval d = evalDerivative(e, box, 0).derivative;
      // Mean value theorem: slope equals the derivative somewhere inside.
      EXPECT_TRUE(d.inflate(1e-9, 1e-9).contains(slope))
          << e.str() << " slope " << slope << " not in " << d.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivativeContainment,
                         ::testing::Values(1, 2, 3));

TEST(EvalDerivative, ValueEnclosureMatchesEval) {
  const Expr x = Expr::variable(0);
  const Expr e = sqr(x) + 1.0 / x;
  const std::vector<Interval> box{Interval(1, 2)};
  const auto vd = evalDerivative(e, box, 0);
  EXPECT_TRUE(vd.value.contains(evalInterval(e, box).mid()));
}

// The compiled fused sweep must reproduce the recursive tree walk
// *bit-exactly* — same value enclosure, same derivative enclosure per
// variable — because the miner's fast engine derives directions from it and
// the differential tests demand identical GuidanceReports.
TEST(CompiledDerivatives, BitIdenticalToTreeWalkAD) {
  util::Rng rng(99991);
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr z = Expr::variable(2);
  const std::vector<Expr> exprs{
      x * y + sqr(x) - z,
      x / (y + 5.0) + sqrt(abs(z) + 1.0),
      exp(0.3 * x) - log(y + 6.0) * z,
      pow(x, 3) - 2.0 * x * y + min(x, z),
      max(x * y, z) + abs(y),
      -(x + y) / (sqr(z) + 1.0),
  };

  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Interval> box;
    for (int v = 0; v < 3; ++v) {
      const double a = rng.uniform(-4, 4);
      const double b = rng.uniform(-4, 4);
      // Mix point and wide domains, as real boxes do (bound vs unbound).
      box.push_back(iter % 3 == 0 ? Interval(a)
                                  : Interval(std::min(a, b), std::max(a, b)));
    }
    for (const Expr& e : exprs) {
      CompiledExpr compiled(e);
      const DerivativeSweep sweep = compiled.derivatives(box);
      ASSERT_EQ(sweep.derivatives.size(), compiled.variables().size());
      for (std::size_t k = 0; k < compiled.variables().size(); ++k) {
        const VarId var = compiled.variables()[k];
        const ValueDerivative vd = evalDerivative(e, box, var);
        EXPECT_EQ(sweep.value, vd.value) << e.str();
        EXPECT_EQ(sweep.derivatives[k], vd.derivative)
            << e.str() << " d/dvar" << var;
        EXPECT_EQ(directionOf(sweep.derivatives[k]),
                  monotonicity(e, box, var))
            << e.str() << " direction w.r.t. var" << var;
      }
    }
  }
}

TEST(SweepCounter, CountsEachSweepKindOnce) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr e = x * y + sqr(x);
  const std::vector<Interval> box{Interval(1, 2), Interval(3, 4)};
  CompiledExpr compiled(e);

  resetSweepCount();
  (void)compiled.evaluate(box);
  EXPECT_EQ(sweepCount(), 1u);
  (void)compiled.derivatives(box);  // fused: one sweep for all variables
  EXPECT_EQ(sweepCount(), 2u);
  (void)monotonicity(e, box, 0);  // tree walk: one sweep per variable
  (void)monotonicity(e, box, 1);
  EXPECT_EQ(sweepCount(), 4u);
  std::vector<Interval> working = box;
  (void)compiled.revise(Interval(0.0, 100.0),
                        {working.data(), working.size()});
  EXPECT_EQ(sweepCount(), 5u);
  resetSweepCount();
  EXPECT_EQ(sweepCount(), 0u);
}

}  // namespace
}  // namespace adpm::expr
