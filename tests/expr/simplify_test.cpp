#include "expr/simplify.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "expr/eval.hpp"
#include "util/rng.hpp"

namespace adpm::expr {
namespace {

using interval::Interval;

std::size_t nodeCount(const Expr& e) {
  std::size_t n = 1;
  for (const auto& c : e.node().children) n += nodeCount(c);
  return n;
}

TEST(Simplify, ConstantFolding) {
  const Expr e = Expr::constant(2.0) * Expr::constant(3.0) +
                 Expr::constant(4.0);
  const Expr s = simplify(e);
  ASSERT_EQ(s.kind(), OpKind::Const);
  EXPECT_DOUBLE_EQ(s.node().value, 10.0);
}

TEST(Simplify, FoldsUnaryFunctions) {
  EXPECT_DOUBLE_EQ(simplify(sqrt(Expr::constant(9.0))).node().value, 3.0);
  EXPECT_DOUBLE_EQ(simplify(abs(Expr::constant(-2.0))).node().value, 2.0);
  EXPECT_DOUBLE_EQ(simplify(sqr(Expr::constant(4.0))).node().value, 16.0);
  EXPECT_DOUBLE_EQ(
      simplify(min(Expr::constant(1.0), Expr::constant(2.0))).node().value,
      1.0);
}

TEST(Simplify, NonFiniteFoldsStaySymbolic) {
  // 1/0 would fold to inf; it must stay symbolic so interval semantics
  // (extended division) are preserved.
  const Expr e = Expr::constant(1.0) / Expr::constant(0.0);
  EXPECT_EQ(simplify(e).kind(), OpKind::Div);
  const Expr l = log(Expr::constant(-1.0));
  EXPECT_EQ(simplify(l).kind(), OpKind::Log);
}

TEST(Simplify, AdditiveIdentities) {
  const Expr x = Expr::variable(0, "x");
  EXPECT_TRUE(simplify(x + 0.0).sameAs(x));
  EXPECT_TRUE(simplify(0.0 + x).sameAs(x));
  EXPECT_TRUE(simplify(x - 0.0).sameAs(x));
  // 0 - x -> -x
  EXPECT_EQ(simplify(0.0 - x).kind(), OpKind::Neg);
}

TEST(Simplify, MultiplicativeIdentities) {
  const Expr x = Expr::variable(0, "x");
  EXPECT_TRUE(simplify(x * 1.0).sameAs(x));
  EXPECT_TRUE(simplify(1.0 * x).sameAs(x));
  EXPECT_TRUE(simplify(x / 1.0).sameAs(x));
  const Expr z = simplify(x * 0.0);
  ASSERT_EQ(z.kind(), OpKind::Const);
  EXPECT_EQ(z.node().value, 0.0);
}

TEST(Simplify, ZeroOverSymbolicDenominatorPreserved) {
  // 0 / x must NOT fold to 0: x's interval may contain 0.
  const Expr x = Expr::variable(0, "x");
  const Expr e = Expr::constant(0.0) / x;
  EXPECT_EQ(simplify(e).kind(), OpKind::Div);
}

TEST(Simplify, DoubleNegationAndPow) {
  const Expr x = Expr::variable(0, "x");
  EXPECT_TRUE(simplify(-(-x)).sameAs(x));
  EXPECT_DOUBLE_EQ(simplify(pow(x, 0)).node().value, 1.0);
  EXPECT_TRUE(simplify(pow(x, 1)).sameAs(x));
  EXPECT_EQ(simplify(pow(x, 2)).kind(), OpKind::Sqr);
  EXPECT_EQ(simplify(pow(x, 3)).kind(), OpKind::Pow);
}

TEST(Simplify, ShrinksRealisticResiduals) {
  // The kind of residual scenario builders produce.
  const Expr g = Expr::variable(0, "gain");
  const Expr b = Expr::variable(1, "bw");
  const Expr e = (0.15 * g + 0.1 * b + 0.0) - (1.0 * Expr::constant(10.0));
  const Expr s = simplify(e);
  EXPECT_LT(nodeCount(s), nodeCount(e));
}

TEST(Simplify, IdempotentAndStable) {
  const Expr x = Expr::variable(0, "x");
  const Expr e = -(-(x * 1.0)) + 0.0;
  const Expr once = simplify(e);
  const Expr twice = simplify(once);
  EXPECT_TRUE(once.sameAs(twice));
  EXPECT_TRUE(once.sameAs(x));
}

// Property: simplification preserves point semantics exactly (where both
// sides are finite).
class SimplifySemantics : public ::testing::TestWithParam<int> {};

TEST_P(SimplifySemantics, PointValuesUnchanged) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 86243);
  const Expr x = Expr::variable(0, "x");
  const Expr y = Expr::variable(1, "y");
  const std::vector<Expr> exprs{
      (x + 0.0) * (1.0 * y) - 0.0,
      pow(x, 2) + pow(y, 1) - pow(x, 0),
      -(-x) / (y + 2.0 * 3.0),
      sqrt(abs(x * 1.0)) + Expr::constant(2.0) * Expr::constant(0.5) * y,
      min(x * 0.0 + y, max(x, 0.0 + y)),
      (0.15 * x + 0.1 * y + 0.0) - 1.0 * 10.0,
  };
  for (int iter = 0; iter < 300; ++iter) {
    const double xv = rng.uniform(-10, 10);
    const double yv = rng.uniform(-10, 10);
    for (const Expr& e : exprs) {
      const Expr s = simplify(e);
      const double before = evalPoint(e, {{xv, yv}});
      const double after = evalPoint(s, {{xv, yv}});
      if (!std::isfinite(before)) continue;
      EXPECT_NEAR(after, before, 1e-9 * (1.0 + std::fabs(before)))
          << e.str() << "  vs  " << s.str();
      // Never wider as an interval either.
      const std::vector<Interval> box{Interval(xv - 1, xv + 1),
                                      Interval(yv - 1, yv + 1)};
      const Interval ib = evalInterval(e, box);
      const Interval ia = evalInterval(s, box);
      EXPECT_TRUE(ib.inflate(1e-9, 1e-9).contains(ia))
          << e.str() << "  vs  " << s.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemantics, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace adpm::expr
