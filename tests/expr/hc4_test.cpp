#include "expr/compiled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "expr/eval.hpp"
#include "util/rng.hpp"

namespace adpm::expr {
namespace {

using interval::Interval;

TEST(CompiledExpr, EvaluateMatchesEvalInterval) {
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr e = sqr(x) + 2.0 * y - 1.0;
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(1, 2), Interval(0, 3)};
  EXPECT_EQ(ce.evaluate(box), evalInterval(e, box));
  EXPECT_EQ(ce.variables(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(ce.variableSpan(), 2u);
}

TEST(CompiledExpr, ReviseNarrowsLinearConstraint) {
  // x + y <= 5 with x in [0,10], y in [2,4]  =>  x in [0,3].
  const Expr e = Expr::variable(0) + Expr::variable(1);
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(0, 10), Interval(2, 4)};
  const auto r = ce.revise(Interval::nonPositive() + Interval(5.0), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.narrowed);
  EXPECT_NEAR(box[0].lo(), 0.0, 1e-8);
  EXPECT_NEAR(box[0].hi(), 3.0, 1e-8);
  EXPECT_EQ(box[1], Interval(2, 4));  // already consistent
}

TEST(CompiledExpr, ReviseEqualityPinsBothSides) {
  // x - y = 0 with x in [0,2], y in [1,5]  =>  both in [1,2].
  const Expr e = Expr::variable(0) - Expr::variable(1);
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(0, 2), Interval(1, 5)};
  const auto r = ce.revise(Interval(0.0), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(box[0].lo(), 1.0, 1e-8);
  EXPECT_NEAR(box[0].hi(), 2.0, 1e-8);
  EXPECT_NEAR(box[1].lo(), 1.0, 1e-8);
  EXPECT_NEAR(box[1].hi(), 2.0, 1e-8);
}

TEST(CompiledExpr, ReviseDetectsInfeasibility) {
  // x + y = 100 with x in [0,1], y in [0,1] is impossible.
  const Expr e = Expr::variable(0) + Expr::variable(1);
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(0, 1), Interval(0, 1)};
  const std::vector<Interval> before = box;
  const auto r = ce.revise(Interval(100.0), box);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.narrowed);
  EXPECT_EQ(box, before);  // untouched on failure
}

TEST(CompiledExpr, ReviseNonlinearGainShape) {
  // gain = k * w / (1 + w) >= 0.6 with k = 1: w/(1+w) >= 0.6  =>  w >= 1.5.
  // The variable repeats, so one revise is loose (the classic dependency
  // problem); iterating revise to its fixpoint converges to the exact bound,
  // which is what the propagation engine's AC-3 loop does.
  const Expr w = Expr::variable(0);
  const Expr e = w / (1.0 + w);
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(0, 10)};
  const Interval target(0.6, 1e6);
  auto first = ce.revise(target, box);
  EXPECT_TRUE(first.feasible);
  EXPECT_GE(box[0].lo(), 0.6 - 1e-8);  // one revise already prunes
  for (int i = 0; i < 200; ++i) {
    if (!ce.revise(target, box).narrowed) break;
  }
  EXPECT_NEAR(box[0].lo(), 1.5, 1e-4);
  EXPECT_NEAR(box[0].hi(), 10.0, 1e-8);
}

TEST(CompiledExpr, ReviseThroughSquare) {
  // x^2 <= 4, x in [-10, 10]  =>  x in [-2, 2].
  CompiledExpr ce(sqr(Expr::variable(0)));
  std::vector<Interval> box{Interval(-10, 10)};
  const auto r = ce.revise(Interval(-1e9, 4.0), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(box[0].lo(), -2.0, 1e-8);
  EXPECT_NEAR(box[0].hi(), 2.0, 1e-8);
}

TEST(CompiledExpr, ReviseThroughSqrt) {
  // sqrt(x) >= 3  =>  x >= 9.
  CompiledExpr ce(sqrt(Expr::variable(0)));
  std::vector<Interval> box{Interval(0, 100)};
  const auto r = ce.revise(Interval(3.0, 1e9), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(box[0].lo(), 9.0, 1e-9);
}

TEST(CompiledExpr, ReviseThroughDivNarowsDenominator) {
  // 10 / y in [1, 2]  =>  y in [5, 10].
  CompiledExpr ce(Expr::constant(10.0) / Expr::variable(0));
  std::vector<Interval> box{Interval(0.1, 100)};
  const auto r = ce.revise(Interval(1.0, 2.0), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(box[0].lo(), 5.0, 1e-7);
  EXPECT_NEAR(box[0].hi(), 10.0, 1e-7);
}

TEST(CompiledExpr, RepeatedVariableIntersectsOccurrences) {
  // x + x = 4  =>  x = 2 (HC4 handles repeated vars soundly, possibly
  // loosely; here the projection is exact).
  const Expr x = Expr::variable(0);
  CompiledExpr ce(x + x);
  std::vector<Interval> box{Interval(0, 10)};
  const auto r = ce.revise(Interval(4.0), box);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(box[0].contains(2.0));
  EXPECT_LE(box[0].width(), 10.0);
}

TEST(CompiledExpr, ReviseIsIdempotentOnFixpoint) {
  const Expr e = Expr::variable(0) + Expr::variable(1);
  CompiledExpr ce(e);
  std::vector<Interval> box{Interval(0, 10), Interval(2, 4)};
  const Interval target(-1e9, 5.0);
  auto r1 = ce.revise(target, box);
  EXPECT_TRUE(r1.narrowed);
  auto r2 = ce.revise(target, box);
  EXPECT_FALSE(r2.narrowed);  // already at fixpoint
}

// Property: HC4-revise never prunes a witness point satisfying the
// constraint.  This is the key soundness requirement for the DCM — pruning a
// feasible design would send simulated designers into dead ends that the
// paper's system would not.
class Hc4Soundness : public ::testing::TestWithParam<int> {};

TEST_P(Hc4Soundness, WitnessPointsSurviveRevise) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7001);
  const Expr x = Expr::variable(0);
  const Expr y = Expr::variable(1);
  const Expr z = Expr::variable(2);
  const std::vector<Expr> exprs{
      x + y - z,
      x * y + z,
      sqr(x) - y * z,
      sqrt(abs(x) + 1.0) * y - z,
      x / (abs(y) + 1.0) + z,
      min(x, y) - max(y, z),
      pow(x, 3) + 2.0 * y,
  };

  for (int iter = 0; iter < 400; ++iter) {
    std::vector<Interval> box;
    std::vector<double> pt;
    for (int i = 0; i < 3; ++i) {
      const double a = rng.uniform(-4, 4);
      const double b = rng.uniform(-4, 4);
      box.emplace_back(std::min(a, b), std::max(a, b));
      pt.push_back(rng.uniform(box.back().lo(), box.back().hi()));
    }
    for (const Expr& e : exprs) {
      const double v = evalPoint(e, pt);
      if (!std::isfinite(v)) continue;
      // Build a target that the witness point satisfies.
      const Interval target(v - 0.25, v + 0.25);
      CompiledExpr ce(e);
      auto working = box;
      const auto r = ce.revise(target, working);
      ASSERT_TRUE(r.feasible) << e.str();
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(working[static_cast<std::size_t>(i)]
                        .inflate(1e-9, 1e-9)
                        .contains(pt[static_cast<std::size_t>(i)]))
            << e.str() << " pruned witness var " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hc4Soundness, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace adpm::expr
