// Negative compile test: writing a GUARDED_BY field without holding its
// mutex must be rejected by -Werror=thread-safety.  Built via try_compile
// from tests/static/CMakeLists.txt; the build FAILING is the pass
// condition.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    ++value_;  // BUG under analysis: mutex_ not held
  }

 private:
  adpm::util::Mutex mutex_;
  int value_ ADPM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return 0;
}
