// Negative compile test: calling a REQUIRES(mutex) method without holding
// the mutex must be rejected by -Werror=thread-safety.  Built via
// try_compile from tests/static/CMakeLists.txt; the build FAILING is the
// pass condition.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  int getLocked() ADPM_REQUIRES(mutex_) { return value_; }

  int get() {
    return getLocked();  // BUG under analysis: mutex_ not held
  }

 private:
  adpm::util::Mutex mutex_;
  int value_ ADPM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.get();
}
