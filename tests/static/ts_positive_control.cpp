// Positive control for the negative compile tests: correct annotated code
// that MUST build under -Werror=thread-safety.  If this file fails, the
// harness flags (not the annotations) are broken, and the two negative
// cases would "fail to compile" for the wrong reason.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    adpm::util::LockGuard lock(mutex_);
    ++value_;
  }

  int get() {
    adpm::util::LockGuard lock(mutex_);
    return value_;
  }

  int getLocked() ADPM_REQUIRES(mutex_) { return value_; }

  int getViaRequires() {
    adpm::util::LockGuard lock(mutex_);
    return getLocked();
  }

 private:
  adpm::util::Mutex mutex_;
  int value_ ADPM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.get() + c.getViaRequires();
}
