// Round-trip fuzz over a paramfile grid: for 64 (shape, seed) pairs the
// generated scenario must (a) be bit-deterministic — generating twice gives
// identical DDDL bytes — and (b) survive parse(write(gen)) structurally
// identical to gen, with write(parse(write(gen))) byte-equal.
#include <gtest/gtest.h>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "gen/generator.hpp"

namespace adpm::gen {
namespace {

std::vector<GenParams> paramGrid() {
  std::vector<GenParams> grid;

  GenParams flat;  // tiny default-ish
  flat.name = "fz-flat";
  grid.push_back(flat);

  GenParams wide;  // more subsystems, high connectivity
  wide.name = "fz-wide";
  wide.subsystems = 5;
  wide.propertiesPerSubsystem = 7;
  wide.constraintsPerSubsystem = 9;
  wide.crossConstraints = 5;
  wide.requirements = 4;
  wide.degree = 4.0;
  grid.push_back(wide);

  GenParams nonlinear;  // nonlinearity-heavy
  nonlinear.name = "fz-nonlinear";
  nonlinear.nonlinearFraction = 1.0;
  nonlinear.constraintsPerSubsystem = 6;
  grid.push_back(nonlinear);

  GenParams discrete;  // discrete-heavy + eq-heavy
  discrete.name = "fz-discrete";
  discrete.discreteFraction = 0.8;
  discrete.eqFraction = 0.6;
  discrete.propertiesPerSubsystem = 6;
  discrete.constraintsPerSubsystem = 6;
  grid.push_back(discrete);

  GenParams zoom;  // one deferred refinement level
  zoom.name = "fz-zoom";
  zoom.zoom.push_back(ZoomSpec{});
  grid.push_back(zoom);

  GenParams deep;  // two levels, second one eager (deferred = false)
  deep.name = "fz-deep";
  deep.subsystems = 3;
  deep.zoom.push_back(ZoomSpec{.refine = 2, .components = 2});
  deep.zoom.push_back(ZoomSpec{.refine = 3,
                               .components = 2,
                               .propertiesPerComponent = 3,
                               .constraintsPerComponent = 2,
                               .links = 1,
                               .deferred = false});
  grid.push_back(deep);

  GenParams tight;  // tightness extremes + monotone-heavy
  tight.name = "fz-tight";
  tight.tightness = 1.0;
  tight.monotoneDeclFraction = 1.0;
  grid.push_back(tight);

  GenParams negatives;  // planted infeasibility
  negatives.name = "fz-negative";
  negatives.infeasibleConstraints = 3;
  grid.push_back(negatives);

  return grid;
}

TEST(RoundTripFuzz, SixtyFourSeedsAcrossTheGrid) {
  const std::vector<GenParams> grid = paramGrid();
  ASSERT_EQ(grid.size(), 8u);
  for (const GenParams& params : grid) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE(params.name + " seed " + std::to_string(seed));

      const GeneratedScenario g = generate(params, seed);
      ASSERT_TRUE(g.spec.validate().empty());
      const std::string text = dddl::write(g.spec);

      // Bit determinism: a second generation gives identical bytes.
      EXPECT_EQ(dddl::write(generate(params, seed).spec), text);

      // parse(write(gen)) is structurally identical to gen.
      const dpm::ScenarioSpec re = dddl::parse(text);
      EXPECT_EQ(dddl::write(re), text);
      ASSERT_EQ(re.objects.size(), g.spec.objects.size());
      ASSERT_EQ(re.properties.size(), g.spec.properties.size());
      ASSERT_EQ(re.constraints.size(), g.spec.constraints.size());
      ASSERT_EQ(re.problems.size(), g.spec.problems.size());
      ASSERT_EQ(re.requirements.size(), g.spec.requirements.size());
      for (std::size_t i = 0; i < re.properties.size(); ++i) {
        EXPECT_EQ(re.properties[i].name, g.spec.properties[i].name);
        EXPECT_EQ(re.properties[i].object, g.spec.properties[i].object);
        EXPECT_EQ(re.properties[i].unit, g.spec.properties[i].unit);
        EXPECT_EQ(re.properties[i].levels, g.spec.properties[i].levels);
        EXPECT_EQ(re.properties[i].preference,
                  g.spec.properties[i].preference);
        EXPECT_EQ(re.properties[i].initial.isDiscrete(),
                  g.spec.properties[i].initial.isDiscrete());
        EXPECT_EQ(re.properties[i].initial.hull().lo(),
                  g.spec.properties[i].initial.hull().lo());
        EXPECT_EQ(re.properties[i].initial.hull().hi(),
                  g.spec.properties[i].initial.hull().hi());
      }
      for (std::size_t i = 0; i < re.constraints.size(); ++i) {
        EXPECT_EQ(re.constraints[i].name, g.spec.constraints[i].name);
        EXPECT_EQ(re.constraints[i].rel, g.spec.constraints[i].rel);
        EXPECT_TRUE(re.constraints[i].lhs.sameAs(g.spec.constraints[i].lhs));
        EXPECT_TRUE(re.constraints[i].rhs.sameAs(g.spec.constraints[i].rhs));
        EXPECT_EQ(re.constraints[i].monotone, g.spec.constraints[i].monotone);
        EXPECT_EQ(re.constraints[i].generatedBy,
                  g.spec.constraints[i].generatedBy);
      }
      for (std::size_t i = 0; i < re.problems.size(); ++i) {
        EXPECT_EQ(re.problems[i].name, g.spec.problems[i].name);
        EXPECT_EQ(re.problems[i].owner, g.spec.problems[i].owner);
        EXPECT_EQ(re.problems[i].inputs, g.spec.problems[i].inputs);
        EXPECT_EQ(re.problems[i].outputs, g.spec.problems[i].outputs);
        EXPECT_EQ(re.problems[i].constraints, g.spec.problems[i].constraints);
        EXPECT_EQ(re.problems[i].parent, g.spec.problems[i].parent);
        EXPECT_EQ(re.problems[i].startReady, g.spec.problems[i].startReady);
      }
    }
  }
}

}  // namespace
}  // namespace adpm::gen
