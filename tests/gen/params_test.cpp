// Paramfile parsing, validation, and serialize/parse round-trip.
#include <gtest/gtest.h>

#include "gen/params.hpp"
#include "util/error.hpp"

namespace adpm::gen {
namespace {

TEST(GenParams, EmptyObjectYieldsDefaults) {
  const GenParams p = parseParams("{}");
  EXPECT_EQ(p, GenParams{});
  EXPECT_EQ(p.name, "generated");
  EXPECT_EQ(p.subsystems, 2u);
  EXPECT_TRUE(p.zoom.empty());
}

TEST(GenParams, SerializeParseRoundTrip) {
  GenParams p;
  p.name = "round";
  p.seed = 42;
  p.subsystems = 7;
  p.propertiesPerSubsystem = 9;
  p.constraintsPerSubsystem = 11;
  p.crossConstraints = 4;
  p.requirements = 3;
  p.degree = 3.25;
  p.nonlinearFraction = 0.5;
  p.eqFraction = 0.25;
  p.discreteFraction = 0.2;
  p.monotoneDeclFraction = 0.75;
  p.tightness = 0.9;
  p.useLibmOps = true;
  p.teamSize = 5;
  p.infeasibleConstraints = 2;
  ZoomSpec z;
  z.refine = 3;
  z.components = 4;
  z.propertiesPerComponent = 5;
  z.constraintsPerComponent = 6;
  z.links = 2;
  z.deferred = false;
  p.zoom = {z, ZoomSpec{}};

  const GenParams back = parseParams(serializeParams(p));
  EXPECT_EQ(back, p);
  // Serialization is canonical: a second trip yields identical text.
  EXPECT_EQ(serializeParams(back), serializeParams(p));
}

TEST(GenParams, UnknownKeyIsAnError) {
  EXPECT_THROW(parseParams(R"({"subsytems": 3})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"zoom": [{"refin": 1}]})"),
               InvalidArgumentError);
}

TEST(GenParams, RejectsInvalidValues) {
  EXPECT_THROW(parseParams(R"({"subsystems": 0})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"propertiesPerSubsystem": 1})"),
               InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"teamSize": 0})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"degree": 0.5})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"degree": 9})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"eqFraction": 1.5})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"subsystems": 2.5})"), InvalidArgumentError);
  EXPECT_THROW(parseParams(R"({"name": ""})"), InvalidArgumentError);
}

TEST(GenParams, LoadRejectsMissingFile) {
  EXPECT_THROW(loadParams("/nonexistent/paramfile.json"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace adpm::gen
