// Generated-zoo propagation oracle: the planted witness point must survive
// propagation (every narrowed hull contains it) under both process flows,
// through decomposition of the zoom hierarchy and a scripted designer that
// synthesises exactly the witness values.
#include <gtest/gtest.h>

#include <cmath>

#include "constraint/propagate.hpp"
#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "gen/generator.hpp"

namespace adpm::gen {
namespace {

using constraint::PropertyId;
using dpm::DesignProcessManager;
using dpm::Operation;
using dpm::OperatorKind;
using dpm::ProblemId;

GenParams oracleParams() {
  GenParams p;
  p.name = "oracle";
  p.subsystems = 3;
  p.propertiesPerSubsystem = 5;
  p.constraintsPerSubsystem = 6;
  p.crossConstraints = 2;
  p.requirements = 2;
  p.discreteFraction = 0.2;
  ZoomSpec z;
  z.refine = 2;
  z.components = 2;
  z.propertiesPerComponent = 4;
  z.constraintsPerComponent = 4;
  z.links = 1;
  p.zoom = {z};
  return p;
}

void expectHullsContainWitness(const constraint::PropagationResult& result,
                               const std::vector<double>& witness,
                               const char* stage) {
  ASSERT_GE(result.hulls.size(), witness.size());
  for (std::size_t i = 0; i < witness.size(); ++i) {
    const auto& h = result.hulls[i];
    const double tol = 1e-6 * std::max(1.0, std::fabs(witness[i]));
    EXPECT_FALSE(h.empty()) << stage << ": property " << i;
    EXPECT_LE(h.lo() - tol, witness[i]) << stage << ": property " << i;
    EXPECT_GE(h.hi() + tol, witness[i]) << stage << ": property " << i;
  }
}

/// Scripted witness designer: releases every deferred problem through
/// decompositions (parents first), then binds each problem's outputs to
/// their witness values.
void runWitnessScript(bool adpm, const GeneratedScenario& g) {
  const dpm::ScenarioSpec& spec = g.spec;
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = adpm});
  dpm::instantiate(spec, mgr);
  const constraint::Propagator prop;

  // The witness survives propagation of the initial (coarse) network.
  expectHullsContainWitness(prop.run(mgr.network()), g.witness, "initial");

  // Release the zoom hierarchy.  Problem indices are topological (parents
  // precede children), so one ascending sweep suffices.
  for (std::size_t i = 0; i < spec.problems.size(); ++i) {
    bool hasDeferredChild = false;
    for (const auto& child : spec.problems) {
      if (child.parent && *child.parent == i && !child.startReady) {
        hasDeferredChild = true;
        break;
      }
    }
    if (!hasDeferredChild) continue;
    Operation decompose;
    decompose.kind = OperatorKind::Decomposition;
    decompose.problem = ProblemId{static_cast<std::uint32_t>(i)};
    decompose.designer = spec.problems[i].owner;
    mgr.execute(decompose);
  }
  expectHullsContainWitness(prop.run(mgr.network()), g.witness,
                            "after decomposition");

  // Synthesise the witness, problem by problem.
  for (std::size_t i = 0; i < spec.problems.size(); ++i) {
    Operation bind;
    bind.kind = OperatorKind::Synthesis;
    bind.problem = ProblemId{static_cast<std::uint32_t>(i)};
    bind.designer = spec.problems[i].owner;
    for (const std::size_t out : spec.problems[i].outputs) {
      const PropertyId pid{static_cast<std::uint32_t>(out)};
      if (mgr.network().property(pid).bound()) continue;  // frozen reqs
      bind.assignments.emplace_back(pid, g.witness[out]);
    }
    if (bind.assignments.empty()) continue;
    mgr.execute(bind);
  }

  // The conventional flow only trusts constraints re-verified after the
  // last change; sweep verifications children-first so parents see settled
  // subnetworks (the ADPM re-checks incrementally and needs none).
  if (!adpm) {
    for (std::size_t i = spec.problems.size(); i-- > 0;) {
      Operation verify;
      verify.kind = OperatorKind::Verification;
      verify.problem = ProblemId{static_cast<std::uint32_t>(i)};
      verify.designer = spec.problems[i].owner;
      mgr.execute(verify);
    }
  }

  // Ground truth: the fully-bound witness design violates nothing.
  const constraint::PropagationResult final = prop.run(mgr.network());
  EXPECT_TRUE(final.violated.empty()) << (adpm ? "ADPM" : "conventional");
  expectHullsContainWitness(final, g.witness, "final");
  EXPECT_TRUE(mgr.designComplete());
  if (adpm) {
    EXPECT_TRUE(mgr.knownViolations().empty());
  }
}

TEST(GeneratedOracle, WitnessSurvivesAdpmFlow) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runWitnessScript(/*adpm=*/true, generate(oracleParams(), seed));
  }
}

TEST(GeneratedOracle, WitnessSurvivesConventionalFlow) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runWitnessScript(/*adpm=*/false, generate(oracleParams(), seed));
  }
}

}  // namespace
}  // namespace adpm::gen
