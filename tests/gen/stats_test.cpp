// Scenario statistics: computed quantities must match hand-counted values
// on a small fixed spec, and the text rendering must carry the headline
// numbers (dddl_tool check --stats builds on this).
#include <gtest/gtest.h>

#include "gen/stats.hpp"

namespace adpm::gen {
namespace {

using constraint::Relation;
using interval::Domain;

dpm::ScenarioSpec tinySpec() {
  dpm::ScenarioSpec s;
  s.name = "tiny";
  s.addObject("sys");
  const auto x = s.addProperty("x", "sys", Domain::continuous(0, 10));
  const auto y = s.addProperty("y", "sys", Domain::discrete({1, 2, 3}));
  const auto z = s.addProperty("z", "sys", Domain::continuous(0, 5));
  s.addConstraint({"sum", s.pvar(x) + s.pvar(y), Relation::Le,
                   expr::Expr::constant(8.0),
                   {{x, false}}});
  s.addConstraint(
      {"model", s.pvar(z), Relation::Eq, expr::sqr(s.pvar(x)), {}});
  s.addConstraint({"floor", s.pvar(y), Relation::Ge,
                   expr::Expr::constant(1.5), {}});
  const auto top = s.addProblem(
      {"Top", "sys", "lead", {}, {x, y, z}, {0, 1, 2}, std::nullopt, {}, true});
  s.constraints[1].generatedBy = top;
  return s;
}

TEST(ScenarioStats, CountsMatchHandCountedSpec) {
  const ScenarioStats stats = computeStats(tinySpec());
  EXPECT_EQ(stats.objects, 1u);
  EXPECT_EQ(stats.properties, 3u);
  EXPECT_EQ(stats.discreteProperties, 1u);
  EXPECT_EQ(stats.constraints, 3u);
  EXPECT_EQ(stats.eqConstraints, 1u);
  EXPECT_EQ(stats.leConstraints, 1u);
  EXPECT_EQ(stats.geConstraints, 1u);
  EXPECT_EQ(stats.generatedConstraints, 1u);
  EXPECT_EQ(stats.monotoneDecls, 1u);
  EXPECT_EQ(stats.nonlinearConstraints, 1u);  // only the sqr model
  EXPECT_EQ(stats.problems, 1u);
  EXPECT_EQ(stats.deferredProblems, 0u);

  // Degrees: sum has {x,y}=2, model {z,x}=2, floor {y}=1.
  ASSERT_EQ(stats.degreeHistogram.size(), 3u);
  EXPECT_EQ(stats.degreeHistogram[1], 1u);
  EXPECT_EQ(stats.degreeHistogram[2], 2u);
  EXPECT_NEAR(stats.meanDegree, 5.0 / 3.0, 1e-12);

  // Operator mix counts every node occurrence.
  EXPECT_EQ(stats.opCounts[static_cast<std::size_t>(expr::OpKind::Sqr)], 1u);
  EXPECT_EQ(stats.opCounts[static_cast<std::size_t>(expr::OpKind::Add)], 1u);
}

TEST(ScenarioStats, FormatCarriesHeadlineNumbers) {
  const std::string text = formatStats(computeStats(tinySpec()), "tiny");
  EXPECT_NE(text.find("scenario:     tiny"), std::string::npos);
  EXPECT_NE(text.find("properties:   3 (1 discrete)"), std::string::npos);
  EXPECT_NE(text.find("1 eq, 1 le, 1 ge"), std::string::npos);
  EXPECT_NE(text.find("histogram 1:1 2:2"), std::string::npos);
  EXPECT_NE(text.find("sqr:1"), std::string::npos);
}

}  // namespace
}  // namespace adpm::gen
