#include "interval/interval_set.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::interval {
namespace {

TEST(IntervalSet, DefaultIsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pieceCount(), 0u);
  EXPECT_TRUE(s.hull().empty());
  EXPECT_EQ(s.measure(), 0.0);
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_EQ(s.str(), "{}");
}

TEST(IntervalSet, SingletonAndEmptyInterval) {
  IntervalSet s{Interval(1, 3)};
  EXPECT_EQ(s.pieceCount(), 1u);
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_TRUE(IntervalSet{Interval::emptySet()}.empty());
}

TEST(IntervalSet, FromPiecesSortsAndMerges) {
  const IntervalSet s = IntervalSet::fromPieces(
      {Interval(5, 7), Interval(1, 3), Interval(2, 4), Interval::emptySet()});
  // [1,3] and [2,4] merge; [5,7] stays separate.
  ASSERT_EQ(s.pieceCount(), 2u);
  EXPECT_EQ(s.pieces()[0], Interval(1, 4));
  EXPECT_EQ(s.pieces()[1], Interval(5, 7));
  EXPECT_EQ(s.hull(), Interval(1, 7));
  EXPECT_DOUBLE_EQ(s.measure(), 5.0);
}

TEST(IntervalSet, TouchingPiecesMerge) {
  const IntervalSet s =
      IntervalSet::fromPieces({Interval(0, 1), Interval(1, 2)});
  ASSERT_EQ(s.pieceCount(), 1u);
  EXPECT_EQ(s.pieces()[0], Interval(0, 2));
}

TEST(IntervalSet, UniteAndIntersect) {
  const IntervalSet a =
      IntervalSet::fromPieces({Interval(0, 2), Interval(5, 8)});
  const IntervalSet b =
      IntervalSet::fromPieces({Interval(1, 6), Interval(9, 10)});

  const IntervalSet u = a.unite(b);
  ASSERT_EQ(u.pieceCount(), 2u);
  EXPECT_EQ(u.pieces()[0], Interval(0, 8));
  EXPECT_EQ(u.pieces()[1], Interval(9, 10));

  const IntervalSet i = a.intersect(b);
  ASSERT_EQ(i.pieceCount(), 2u);
  EXPECT_EQ(i.pieces()[0], Interval(1, 2));
  EXPECT_EQ(i.pieces()[1], Interval(5, 6));

  EXPECT_TRUE(a.intersect(Interval(3, 4)).empty());
  EXPECT_EQ(a.intersect(Interval(1, 6)).pieces()[1], Interval(5, 6));
}

TEST(IntervalSet, NearestPiece) {
  const IntervalSet s =
      IntervalSet::fromPieces({Interval(0, 1), Interval(10, 12)});
  EXPECT_EQ(s.nearestPiece(0.5), Interval(0, 1));
  EXPECT_EQ(s.nearestPiece(4.0), Interval(0, 1));
  EXPECT_EQ(s.nearestPiece(8.0), Interval(10, 12));
  EXPECT_THROW(IntervalSet().nearestPiece(0.0), adpm::InvalidArgumentError);
}

TEST(IntervalSet, StrShowsUnion) {
  const IntervalSet s =
      IntervalSet::fromPieces({Interval(0, 1), Interval(2, 3)});
  EXPECT_EQ(s.str(3), "[0, 1] u [2, 3]");
}

// Property: union/intersection behave like pointwise set operations.
class IntervalSetAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetAlgebra, MatchesPointwiseSemantics) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7333);
  for (int iter = 0; iter < 200; ++iter) {
    auto randomSet = [&]() {
      std::vector<Interval> pieces;
      const int n = 1 + static_cast<int>(rng.index(4));
      for (int i = 0; i < n; ++i) {
        const double a = rng.uniform(-10, 10);
        const double b = rng.uniform(-10, 10);
        pieces.emplace_back(std::min(a, b), std::max(a, b));
      }
      return IntervalSet::fromPieces(std::move(pieces));
    };
    const IntervalSet a = randomSet();
    const IntervalSet b = randomSet();
    const IntervalSet u = a.unite(b);
    const IntervalSet i = a.intersect(b);

    for (int probe = 0; probe < 40; ++probe) {
      const double v = rng.uniform(-11, 11);
      EXPECT_EQ(u.contains(v), a.contains(v) || b.contains(v));
      EXPECT_EQ(i.contains(v), a.contains(v) && b.contains(v));
    }
    // Invariants: pieces sorted & disjoint.
    for (std::size_t k = 1; k < u.pieceCount(); ++k) {
      EXPECT_GT(u.pieces()[k].lo(), u.pieces()[k - 1].hi());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetAlgebra, ::testing::Values(1, 2));

}  // namespace
}  // namespace adpm::interval
