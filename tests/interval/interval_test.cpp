#include "interval/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace adpm::interval {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Interval, DefaultIsEmpty) {
  Interval e;
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.contains(0.0));
  EXPECT_EQ(e.width(), 0.0);
}

TEST(Interval, InvertedBoundsCanonicalizeToEmpty) {
  Interval e(3.0, 1.0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e, Interval::emptySet());
}

TEST(Interval, PointInterval) {
  Interval p(2.5);
  EXPECT_TRUE(p.isPoint());
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.width(), 0.0);
  EXPECT_EQ(p.mid(), 2.5);
  EXPECT_TRUE(p.contains(2.5));
}

TEST(Interval, EntireAndBounded) {
  EXPECT_TRUE(Interval::entire().isEntire());
  EXPECT_FALSE(Interval::entire().isBounded());
  EXPECT_TRUE(Interval(0, 1).isBounded());
  EXPECT_FALSE(Interval(0, kInf).isBounded());
  EXPECT_EQ(Interval::entire().mid(), 0.0);
  EXPECT_EQ(Interval(3.0, kInf).mid(), 3.0);
  EXPECT_EQ(Interval(-kInf, 5.0).mid(), 5.0);
}

TEST(Interval, ContainsInterval) {
  EXPECT_TRUE(Interval(0, 10).contains(Interval(2, 3)));
  EXPECT_TRUE(Interval(0, 10).contains(Interval::emptySet()));
  EXPECT_FALSE(Interval(0, 10).contains(Interval(5, 11)));
  EXPECT_FALSE(Interval::emptySet().contains(Interval(1, 2)));
}

TEST(Interval, Intersects) {
  EXPECT_TRUE(Interval(0, 2).intersects(Interval(2, 4)));  // touching counts
  EXPECT_FALSE(Interval(0, 2).intersects(Interval(3, 4)));
  EXPECT_FALSE(Interval::emptySet().intersects(Interval(0, 1)));
}

TEST(Interval, Clamp) {
  Interval iv(1.0, 5.0);
  EXPECT_EQ(iv.clamp(0.0), 1.0);
  EXPECT_EQ(iv.clamp(10.0), 5.0);
  EXPECT_EQ(iv.clamp(3.0), 3.0);
}

TEST(Interval, InflateWidensFiniteBounds) {
  const Interval iv(1.0, 2.0);
  const Interval wide = iv.inflate(0.1, 0.0);
  EXPECT_LT(wide.lo(), 1.0);
  EXPECT_GT(wide.hi(), 2.0);
  EXPECT_TRUE(wide.contains(iv));

  const Interval half(0.0, kInf);
  const Interval halfWide = half.inflate(0.1, 0.05);
  EXPECT_EQ(halfWide.lo(), -0.05);
  EXPECT_EQ(halfWide.hi(), kInf);
}

TEST(IntervalSetOps, IntersectAndHull) {
  EXPECT_EQ(intersect(Interval(0, 5), Interval(3, 8)), Interval(3, 5));
  EXPECT_TRUE(intersect(Interval(0, 1), Interval(2, 3)).empty());
  EXPECT_EQ(hull(Interval(0, 1), Interval(4, 5)), Interval(0, 5));
  EXPECT_EQ(hull(Interval::emptySet(), Interval(1, 2)), Interval(1, 2));
}

TEST(IntervalArith, Add) {
  EXPECT_EQ(Interval(1, 2) + Interval(10, 20), Interval(11, 22));
  EXPECT_TRUE((Interval::emptySet() + Interval(0, 1)).empty());
}

TEST(IntervalArith, Sub) {
  EXPECT_EQ(Interval(1, 2) - Interval(10, 20), Interval(-19, -8));
}

TEST(IntervalArith, MulSignCases) {
  EXPECT_EQ(Interval(2, 3) * Interval(4, 5), Interval(8, 15));
  EXPECT_EQ(Interval(-3, -2) * Interval(4, 5), Interval(-15, -8));
  EXPECT_EQ(Interval(-2, 3) * Interval(-5, 4), Interval(-15, 12));
  EXPECT_EQ(Interval(0.0) * Interval::entire(), Interval(0.0));
}

TEST(IntervalArith, DivSimple) {
  EXPECT_EQ(Interval(6, 12) / Interval(2, 3), Interval(2, 6));
  EXPECT_EQ(Interval(6, 12) / Interval(-3, -2), Interval(-6, -2));
}

TEST(IntervalArith, DivByZeroStraddle) {
  // Denominator straddles zero and numerator excludes zero: hull is entire.
  EXPECT_TRUE((Interval(1, 2) / Interval(-1, 1)).isEntire());
  // Zero endpoint: half-line.
  const Interval q = Interval(1, 2) / Interval(0, 1);
  EXPECT_EQ(q.lo(), 1.0);
  EXPECT_EQ(q.hi(), kInf);
}

TEST(IntervalArith, Neg) {
  EXPECT_EQ(-Interval(1, 2), Interval(-2, -1));
}

TEST(IntervalFns, Sqr) {
  EXPECT_EQ(sqr(Interval(2, 3)), Interval(4, 9));
  EXPECT_EQ(sqr(Interval(-3, -2)), Interval(4, 9));
  EXPECT_EQ(sqr(Interval(-2, 3)), Interval(0, 9));
}

TEST(IntervalFns, SqrtClipsDomain) {
  EXPECT_EQ(sqrt(Interval(4, 9)), Interval(2, 3));
  EXPECT_EQ(sqrt(Interval(-4, 9)), Interval(0, 3));
  EXPECT_TRUE(sqrt(Interval(-9, -4)).empty());
}

TEST(IntervalFns, PowCases) {
  EXPECT_EQ(pow(Interval(2, 3), 0), Interval(1.0));
  EXPECT_EQ(pow(Interval(2, 3), 1), Interval(2, 3));
  EXPECT_EQ(pow(Interval(-2, 3), 2), Interval(0, 9));
  EXPECT_EQ(pow(Interval(-2, 3), 3), Interval(-8, 27));
  // Negative exponent via reciprocal.
  EXPECT_EQ(pow(Interval(2, 4), -1), Interval(0.25, 0.5));
}

TEST(IntervalFns, ExpLog) {
  const Interval e = exp(Interval(0, 1));
  EXPECT_DOUBLE_EQ(e.lo(), 1.0);
  EXPECT_DOUBLE_EQ(e.hi(), std::exp(1.0));
  const Interval l = log(Interval(1.0, std::exp(2.0)));
  EXPECT_DOUBLE_EQ(l.lo(), 0.0);
  EXPECT_NEAR(l.hi(), 2.0, 1e-12);
  // log clips to positive reals; [0, x] maps to [-inf, log x].
  EXPECT_EQ(log(Interval(0.0, 1.0)).lo(), -kInf);
  EXPECT_TRUE(log(Interval(-2.0, -1.0)).empty());
}

TEST(IntervalFns, AbsMinMax) {
  EXPECT_EQ(abs(Interval(-3, 2)), Interval(0, 3));
  EXPECT_EQ(abs(Interval(-3, -1)), Interval(1, 3));
  EXPECT_EQ(min(Interval(0, 5), Interval(2, 3)), Interval(0, 3));
  EXPECT_EQ(max(Interval(0, 5), Interval(2, 3)), Interval(2, 5));
}

TEST(ExtendedDiv, SplitsWhenDenominatorStraddles) {
  // [1,2] / [-1,1] = (-inf,-1] ∪ [1,+inf)
  const IntervalPair q = extendedDiv(Interval(1, 2), Interval(-1, 1));
  EXPECT_EQ(q.first, Interval(-kInf, -1.0));
  EXPECT_EQ(q.second, Interval(1.0, kInf));
}

TEST(ExtendedDiv, ZeroNumeratorWithStraddle) {
  const IntervalPair q = extendedDiv(Interval(-1, 1), Interval(-1, 1));
  EXPECT_TRUE(q.first.isEntire());
  EXPECT_TRUE(q.second.empty());
}

TEST(ExtendedDiv, DivisionByExactZero) {
  EXPECT_TRUE(extendedDiv(Interval(1, 2), Interval(0.0)).first.empty());
  EXPECT_TRUE(extendedDiv(Interval(-1, 1), Interval(0.0)).first.isEntire());
}

TEST(Projection, AddLhs) {
  // z = x + y, z=[10,12], y=[1,2] -> x in [8,11] intersected with prior x.
  EXPECT_EQ(projectAddLhs(Interval(10, 12), Interval(0, 100), Interval(1, 2)),
            Interval(8, 11));
}

TEST(Projection, MulLhsThroughZeroDenominator) {
  // z = x*y, z=[4,8], y=[-2,2]: x in (-inf,-2] ∪ [2,inf); prior x=[0,10] -> [2,10].
  EXPECT_EQ(projectMulLhs(Interval(4, 8), Interval(0, 10), Interval(-2, 2)),
            Interval(2, 10));
}

TEST(Projection, Sqr) {
  // z = x², z=[4,9]: x in [-3,-2] ∪ [2,3]; prior [0,10] -> [2,3].
  EXPECT_EQ(projectSqr(Interval(4, 9), Interval(0, 10)), Interval(2, 3));
  // Prior straddles: hull of both roots.
  EXPECT_EQ(projectSqr(Interval(4, 9), Interval(-10, 10)), Interval(-3, 3));
  EXPECT_TRUE(projectSqr(Interval(-9, -4), Interval(-10, 10)).empty());
}

TEST(Projection, PowOddAndEven) {
  EXPECT_EQ(projectPow(Interval(8, 27), Interval(-100, 100), 3),
            Interval(2, 3));
  EXPECT_EQ(projectPow(Interval(-27, -8), Interval(-100, 100), 3),
            Interval(-3, -2));
  EXPECT_EQ(projectPow(Interval(16, 81), Interval(0, 100), 4), Interval(2, 3));
}

TEST(Projection, Abs) {
  EXPECT_EQ(projectAbs(Interval(2, 3), Interval(-10, 0)), Interval(-3, -2));
  EXPECT_EQ(projectAbs(Interval(2, 3), Interval(-10, 10)), Interval(-3, 3));
  EXPECT_TRUE(projectAbs(Interval(-3, -2), Interval(-10, 10)).empty());
}

TEST(Projection, MinForcesFloor) {
  // z = min(x,y) = [5,6]; x must be >= 5.
  EXPECT_EQ(projectMinLhs(Interval(5, 6), Interval(0, 10), Interval(0, 10)),
            Interval(5, 10));
  // y cannot achieve the min (y.lo > z.hi): x must be inside z.
  EXPECT_EQ(projectMinLhs(Interval(5, 6), Interval(0, 10), Interval(8, 9)),
            Interval(5, 6));
}

TEST(Projection, MaxForcesCeiling) {
  EXPECT_EQ(projectMaxLhs(Interval(5, 6), Interval(0, 10), Interval(0, 10)),
            Interval(0, 6));
  EXPECT_EQ(projectMaxLhs(Interval(5, 6), Interval(0, 10), Interval(0, 1)),
            Interval(5, 6));
}

}  // namespace
}  // namespace adpm::interval
