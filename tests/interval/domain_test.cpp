#include "interval/domain.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::interval {
namespace {

TEST(Domain, DefaultIsEmptyContinuous) {
  Domain d;
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.isDiscrete());
}

TEST(Domain, ContinuousBasics) {
  const Domain d = Domain::continuous(1.0, 4.0);
  EXPECT_FALSE(d.empty());
  EXPECT_FALSE(d.isDiscrete());
  EXPECT_EQ(d.hull(), Interval(1.0, 4.0));
  EXPECT_EQ(d.measure(), 3.0);
  EXPECT_TRUE(d.contains(2.0));
  EXPECT_FALSE(d.contains(5.0));
  EXPECT_EQ(d.minValue(), 1.0);
  EXPECT_EQ(d.maxValue(), 4.0);
}

TEST(Domain, DiscreteSortsAndDedupes) {
  const Domain d = Domain::discrete({3.0, 1.0, 2.0, 1.0});
  ASSERT_TRUE(d.isDiscrete());
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(d.hull(), Interval(1.0, 3.0));
  EXPECT_EQ(d.minValue(), 1.0);
  EXPECT_EQ(d.maxValue(), 3.0);
}

TEST(Domain, PointDomain) {
  const Domain d = Domain::point(2.5);
  EXPECT_TRUE(d.isPoint());
  EXPECT_EQ(d.measure(), 0.0);
  EXPECT_TRUE(d.contains(2.5));
}

TEST(Domain, ContainsWithTolerance) {
  const Domain c = Domain::continuous(1.0, 2.0);
  EXPECT_TRUE(c.contains(2.0005, 1e-3));
  EXPECT_FALSE(c.contains(2.1, 1e-3));
  const Domain d = Domain::discrete({1.0, 5.0});
  EXPECT_TRUE(d.contains(5.0 + 1e-9, 1e-6));
  EXPECT_FALSE(d.contains(3.0, 1e-6));
}

TEST(Domain, IntersectContinuous) {
  const Domain d = Domain::continuous(0.0, 10.0);
  const Domain narrowed = d.intersect(Interval(5.0, 20.0));
  EXPECT_EQ(narrowed.hull(), Interval(5.0, 10.0));
  EXPECT_TRUE(d.intersect(Interval(20.0, 30.0)).empty());
}

TEST(Domain, IntersectDiscreteFilters) {
  const Domain d = Domain::discrete({1.0, 2.0, 3.0, 4.0});
  const Domain kept = d.intersect(Interval(1.5, 3.5));
  ASSERT_TRUE(kept.isDiscrete());
  EXPECT_EQ(kept.values(), (std::vector<double>{2.0, 3.0}));
  EXPECT_TRUE(d.intersect(Interval(10.0, 20.0)).empty());
}

TEST(Domain, RelativeMeasureNormalizes) {
  const Domain initial = Domain::continuous(0.0, 10.0);
  const Domain narrowed = Domain::continuous(2.0, 4.5);
  EXPECT_DOUBLE_EQ(narrowed.relativeMeasure(initial), 0.25);
  EXPECT_DOUBLE_EQ(initial.relativeMeasure(initial), 1.0);

  const Domain d0 = Domain::discrete({1, 2, 3, 4});
  const Domain d1 = d0.intersect(Interval(1.0, 2.0));
  EXPECT_DOUBLE_EQ(d1.relativeMeasure(d0), 0.5);
}

TEST(Domain, RelativeMeasureOfPointReference) {
  const Domain ref = Domain::point(3.0);  // zero-width reference
  EXPECT_EQ(Domain::point(3.0).relativeMeasure(ref), 1.0);
  EXPECT_EQ(Domain().relativeMeasure(ref), 0.0);
}

TEST(Domain, Nearest) {
  const Domain c = Domain::continuous(1.0, 2.0);
  EXPECT_EQ(c.nearest(0.0), 1.0);
  EXPECT_EQ(c.nearest(1.7), 1.7);
  const Domain d = Domain::discrete({1.0, 5.0, 9.0});
  EXPECT_EQ(d.nearest(4.0), 5.0);
  EXPECT_EQ(d.nearest(2.9), 1.0);
}

TEST(Domain, ErrorsOnMisuse) {
  const Domain c = Domain::continuous(0.0, 1.0);
  EXPECT_THROW(c.count(), InvalidArgumentError);
  EXPECT_THROW(c.values(), InvalidArgumentError);
  Domain empty;
  EXPECT_THROW(empty.minValue(), InvalidArgumentError);
  EXPECT_THROW(empty.nearest(0.0), InvalidArgumentError);
}

TEST(Domain, StrFormats) {
  EXPECT_EQ(Domain::discrete({1.0, 2.0}).str(3), "{1, 2}");
  EXPECT_EQ(Domain::continuous(0.0, 1.0).str(3), "[0, 1]");
}

TEST(Domain, Equality) {
  EXPECT_EQ(Domain::continuous(0, 1), Domain::continuous(0, 1));
  EXPECT_FALSE(Domain::continuous(0, 1) == Domain::discrete({0, 1}));
  EXPECT_EQ(Domain::discrete({2, 1}), Domain::discrete({1, 2}));
}

}  // namespace
}  // namespace adpm::interval
