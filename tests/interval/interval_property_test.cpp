// Property-based soundness tests for interval arithmetic.
//
// The fundamental containment property: for any op and any points x ∈ X,
// y ∈ Y, the point result op(x, y) must lie inside the interval result
// op(X, Y).  Violations of this property would make constraint propagation
// unsound (pruning feasible design points), which would corrupt every
// TeamSim experiment downstream, so we hammer it with random boxes.
#include "interval/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace adpm::interval {
namespace {

using util::Rng;

Interval randomInterval(Rng& rng, double scale) {
  const double a = rng.uniform(-scale, scale);
  const double b = rng.uniform(-scale, scale);
  return Interval(std::min(a, b), std::max(a, b));
}

double samplePoint(Rng& rng, const Interval& iv) {
  return rng.uniform(iv.lo(), iv.hi() + 1e-300);  // degenerate-safe
}

class BinaryOpContainment : public ::testing::TestWithParam<int> {};

TEST_P(BinaryOpContainment, PointResultInsideIntervalResult) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 2000; ++iter) {
    const Interval X = randomInterval(rng, 50.0);
    const Interval Y = randomInterval(rng, 50.0);
    const double x = samplePoint(rng, X);
    const double y = samplePoint(rng, Y);

    EXPECT_TRUE((X + Y).contains(x + y)) << X.str() << " + " << Y.str();
    EXPECT_TRUE((X - Y).contains(x - y)) << X.str() << " - " << Y.str();
    EXPECT_TRUE((X * Y).contains(x * y)) << X.str() << " * " << Y.str();
    if (y != 0.0) {
      const Interval Q = X / Y;
      // Division through a zero-straddling denominator may produce entire.
      EXPECT_TRUE(Q.contains(x / y) || Q.isEntire())
          << X.str() << " / " << Y.str();
    }
    EXPECT_TRUE(min(X, Y).contains(std::min(x, y)));
    EXPECT_TRUE(max(X, Y).contains(std::max(x, y)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryOpContainment,
                         ::testing::Values(1, 2, 3, 4, 5));

class UnaryOpContainment : public ::testing::TestWithParam<int> {};

TEST_P(UnaryOpContainment, PointResultInsideIntervalResult) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 2000; ++iter) {
    const Interval X = randomInterval(rng, 20.0);
    const double x = samplePoint(rng, X);

    EXPECT_TRUE((-X).contains(-x));
    EXPECT_TRUE(sqr(X).contains(x * x));
    EXPECT_TRUE(abs(X).contains(std::fabs(x)));
    if (x >= 0.0) {
      EXPECT_TRUE(sqrt(X).contains(std::sqrt(x)));
    }
    if (x > 0.0) {
      EXPECT_TRUE(log(X).contains(std::log(x)));
    }
    EXPECT_TRUE(exp(X).contains(std::exp(x)));
    for (int n : {2, 3, 5}) {
      EXPECT_TRUE(pow(X, n).contains(std::pow(x, n)))
          << X.str() << "^" << n << " at " << x;
    }
    if (x != 0.0) {
      const Interval P = pow(X, -1);
      EXPECT_TRUE(P.contains(1.0 / x) || P.isEntire());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnaryOpContainment,
                         ::testing::Values(1, 2, 3, 4, 5));

class ProjectionSoundness : public ::testing::TestWithParam<int> {};

// Projection soundness: if z = f(x, y) with x ∈ X, y ∈ Y, z ∈ Z, then the
// projected X' must still contain x.  (Projections may be loose — never
// lossy.)
TEST_P(ProjectionSoundness, ProjectionsKeepWitnessPoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int iter = 0; iter < 2000; ++iter) {
    const Interval X = randomInterval(rng, 10.0);
    const Interval Y = randomInterval(rng, 10.0);
    const double x = samplePoint(rng, X);
    const double y = samplePoint(rng, Y);

    {  // addition
      const double z = x + y;
      const Interval Z(z - 0.5, z + 0.5);
      EXPECT_TRUE(projectAddLhs(Z, X, Y).contains(x));
    }
    {  // multiplication
      const double z = x * y;
      const Interval Z(z - 0.5, z + 0.5);
      EXPECT_TRUE(projectMulLhs(Z, X, Y).contains(x))
          << "x=" << x << " y=" << y << " X=" << X.str() << " Y=" << Y.str();
    }
    {  // square
      const double z = x * x;
      const Interval Z(z - 0.5, z + 0.5);
      EXPECT_TRUE(projectSqr(Z, X).contains(x));
    }
    {  // abs
      const double z = std::fabs(x);
      const Interval Z(z - 0.25, z + 0.25);
      EXPECT_TRUE(projectAbs(Z, X).contains(x));
    }
    {  // odd and even powers
      for (int n : {2, 3}) {
        const double z = std::pow(x, n);
        const Interval Z(z - 0.5, z + 0.5);
        EXPECT_TRUE(projectPow(Z, X, n).contains(x))
            << "x=" << x << " n=" << n;
      }
    }
    {  // min / max
      const double z = std::min(x, y);
      const Interval Z(z - 0.25, z + 0.25);
      EXPECT_TRUE(projectMinLhs(Z, X, Y).contains(x));
      const double zm = std::max(x, y);
      const Interval Zm(zm - 0.25, zm + 0.25);
      EXPECT_TRUE(projectMaxLhs(Zm, X, Y).contains(x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionSoundness,
                         ::testing::Values(1, 2, 3, 4, 5));

// Algebraic identities that must hold exactly for our representation.
TEST(IntervalAlgebra, HullIsCommutativeAndAbsorbsEmpty) {
  Rng rng(404);
  for (int iter = 0; iter < 500; ++iter) {
    const Interval a = randomInterval(rng, 100.0);
    const Interval b = randomInterval(rng, 100.0);
    EXPECT_EQ(hull(a, b), hull(b, a));
    EXPECT_EQ(hull(a, Interval::emptySet()), a);
    EXPECT_TRUE(hull(a, b).contains(a));
    EXPECT_TRUE(hull(a, b).contains(b));
  }
}

TEST(IntervalAlgebra, IntersectIsTightest) {
  Rng rng(405);
  for (int iter = 0; iter < 500; ++iter) {
    const Interval a = randomInterval(rng, 100.0);
    const Interval b = randomInterval(rng, 100.0);
    const Interval c = intersect(a, b);
    EXPECT_EQ(c, intersect(b, a));
    EXPECT_TRUE(a.contains(c));
    EXPECT_TRUE(b.contains(c));
  }
}

}  // namespace
}  // namespace adpm::interval
