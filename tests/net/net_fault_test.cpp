// Socket failpoint torture (ISSUE-6): the net.read / net.write / net.accept
// failpoints in the socket wrappers must surface as ConnectionError, the
// client's reconnect-and-resync path must disambiguate the in-flight
// command, and — the load-bearing invariant — injected socket chaos must
// NEVER produce silent divergence between a client's shadow and the
// server's session.  Needs -DADPM_FAULT_INJECTION=ON; skips without it.
#include <gtest/gtest.h>

#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION

#include <chrono>
#include <optional>
#include <string>

#include "dddl/writer.hpp"
#include "dpm/scenario.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/wire_load.hpp"
#include "scenarios/sensing.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::net {
namespace {

using namespace std::chrono_literals;
using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

dpm::ScenarioSpec twoTeamScenario() {
  dpm::ScenarioSpec s;
  s.name = "two-team";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint(
      {"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"B", "b", "ben", {cap}, {y}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

dpm::Operation synth(std::uint32_t prob, const char* designer,
                     std::uint32_t pid, double v) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultRegistry::instance().reset(); }
  void TearDown() override { util::FaultRegistry::instance().reset(); }

  static util::FaultPlan once(util::FaultAction action) {
    util::FaultPlan plan;
    plan.action = action;
    plan.everyNth = 1;
    plan.maxFires = 1;
    return plan;
  }
};

TEST_F(NetFaultTest, ShortWriteTearsTheFrameAndTheResendLands) {
  service::SessionStore store{{}};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  Client::Options copts;
  copts.port = port;
  Client client{copts};
  client.connect();
  client.openDddl("f", dddl::write(twoTeamScenario()), true);
  client.apply("f", synth(1, "ana", 1, 30.0));
  ASSERT_EQ(client.snapshot("f", false).stage, 1u);

  {
    // The very next write anywhere in the process is the client's Apply
    // frame: half of it reaches the server (a torn frame its parser must
    // hold, then discard at EOF), the rest dies with the connection.
    util::ScopedFault fault("net.write", once(util::FaultAction::ShortWrite));
    EXPECT_THROW(client.apply("f", synth(2, "ben", 2, 15.0)), ConnectionError);
    EXPECT_EQ(util::FaultRegistry::instance().fired("net.write"), 1u);
  }

  // The torn frame never decoded, so the operation never executed: the
  // reconnect sees the old stage and the resend commits exactly once.
  client.connect();
  ASSERT_EQ(client.snapshot("f", false).stage, 1u);
  client.apply("f", synth(2, "ben", 2, 15.0));
  EXPECT_EQ(client.snapshot("f", false).stage, 2u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(NetFaultTest, ReadFaultDropsTheConnectionWithoutExecuting) {
  service::SessionStore store{{}};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  Client::Options copts;
  copts.port = port;
  Client client{copts};
  client.connect();
  client.openDddl("f", dddl::write(twoTeamScenario()), true);
  client.apply("f", synth(1, "ana", 1, 30.0));

  {
    // The server's reactor is the next reader of actual socket data (the
    // client only reads after the server reacted), so the fault lands on
    // the server's read of the Apply frame — before it ever parses.
    util::ScopedFault fault("net.read", once(util::FaultAction::Error));
    EXPECT_THROW(client.apply("f", synth(2, "ben", 2, 15.0)), ConnectionError);
    EXPECT_EQ(util::FaultRegistry::instance().fired("net.read"), 1u);
  }

  client.connect();
  ASSERT_EQ(client.snapshot("f", false).stage, 1u);
  client.apply("f", synth(2, "ben", 2, 15.0));
  EXPECT_EQ(client.snapshot("f", false).stage, 2u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(NetFaultTest, AcceptFaultResetsThePeerButTheServerKeepsServing) {
  service::SessionStore store{{}};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  Client::Options copts;
  copts.port = port;
  Client client{copts};

  {
    util::ScopedFault fault("net.accept", once(util::FaultAction::Error));
    // The TCP handshake completes from the backlog, so connect() succeeds;
    // the injected accept failure then closes the socket server-side and
    // the first request dies.
    client.connect();
    EXPECT_THROW(client.openDddl("f", dddl::write(twoTeamScenario()), true),
                 ConnectionError);
    EXPECT_EQ(util::FaultRegistry::instance().fired("net.accept"), 1u);
  }

  client.connect();
  client.openDddl("f", dddl::write(twoTeamScenario()), true);
  EXPECT_EQ(client.snapshot("f", false).stage, 0u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(NetFaultTest, WireLoadUnderSocketFaultsNeverDivergesSilently) {
  service::SessionStore::Options so;
  so.executor.threads = 2;
  service::SessionStore store{so};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  // Periodic short-writes tear connections on both sides of the wire while
  // two sessions run the full workload.  The contract under chaos: every
  // session either completes with a bit-identical shadow or fails LOUDLY —
  // digestMismatches (silent divergence) must stay zero no matter what.
  util::FaultRegistry::instance().armFromSpec(
      "net.write=short-write:every=60:max=4");

  WireLoadOptions load;
  load.port = port;
  load.sessions = 2;
  load.dddl = dddl::write(scenarios::sensingSystemScenario());
  load.sim.seed = 17;
  load.maxReconnects = 16;
  load.idPrefix = "chaos-";
  const WireLoadReport report = runWireLoad(load);

  EXPECT_GE(util::FaultRegistry::instance().fired("net.write"), 1u);
  EXPECT_EQ(report.digestMismatches, 0u);
  EXPECT_EQ(report.completedSessions + report.failedSessions, report.sessions);

  // Disarm and prove the service recovered fully: a clean load on the same
  // server must succeed end to end.
  util::FaultRegistry::instance().reset();
  WireLoadOptions clean = load;
  clean.idPrefix = "after-";
  const WireLoadReport after = runWireLoad(clean);
  EXPECT_EQ(after.completedSessions, after.sessions);
  EXPECT_EQ(after.failedSessions, 0u);
  EXPECT_EQ(after.digestMismatches, 0u);

  EXPECT_TRUE(server.shutdown(5s));
}

}  // namespace
}  // namespace adpm::net

#else  // !ADPM_FAULT_INJECTION

namespace adpm::net {
namespace {

TEST(NetFaultTest, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "needs -DADPM_FAULT_INJECTION=ON";
}

}  // namespace
}  // namespace adpm::net

#endif
