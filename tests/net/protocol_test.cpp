#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace adpm::net {
namespace {

namespace json = util::json;
using constraint::ConstraintId;
using constraint::PropertyId;

dpm::OperationRecord fullRecord() {
  dpm::OperationRecord record;
  record.stage = 12;
  record.op.kind = dpm::OperatorKind::Synthesis;
  record.op.problem = dpm::ProblemId{3};
  record.op.designer = "ana";
  record.op.assignments.emplace_back(PropertyId{1}, 1.0 / 3.0);
  record.op.triggeredBy = ConstraintId{2};
  record.op.rationale = "alpha=2";
  record.evaluations = 77;
  record.violationsFound = {ConstraintId{0}, ConstraintId{4}};
  record.violationsKnownAfter = 2;
  record.spin = true;
  record.constraintsGenerated = {ConstraintId{9}};
  return record;
}

TEST(Protocol, OperationRecordRoundTrips) {
  const dpm::OperationRecord a = fullRecord();
  const dpm::OperationRecord b =
      operationRecordFromJson(operationRecordToJson(a));
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.op.designer, b.op.designer);
  ASSERT_EQ(a.op.assignments.size(), b.op.assignments.size());
  // Bit-identical doubles: the wire uses the same %.17g canonical JSON the
  // WAL journals.
  EXPECT_EQ(a.op.assignments[0].second, b.op.assignments[0].second);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.violationsFound.size(), b.violationsFound.size());
  EXPECT_EQ(a.violationsFound[1].value, b.violationsFound[1].value);
  EXPECT_EQ(a.violationsKnownAfter, b.violationsKnownAfter);
  EXPECT_EQ(a.spin, b.spin);
  ASSERT_EQ(a.constraintsGenerated.size(), b.constraintsGenerated.size());
  EXPECT_EQ(a.constraintsGenerated[0].value, b.constraintsGenerated[0].value);
}

TEST(Protocol, OperationRecordEncodingIsStable) {
  const json::Value v = operationRecordToJson(fullRecord());
  const std::string once = json::serialize(v);
  const std::string twice =
      json::serialize(operationRecordToJson(operationRecordFromJson(v)));
  EXPECT_EQ(once, twice);
}

TEST(Protocol, NotificationRoundTripsWithOptionals) {
  dpm::Notification n;
  n.kind = dpm::NotificationKind::ViolationDetected;
  n.designer = "bob";
  n.stage = 4;
  n.constraintId = ConstraintId{7};
  n.propertyId = PropertyId{2};
  n.text = "constraint \"budget\" violated";
  const json::Value v = notificationToJson("sess-1", n);
  EXPECT_EQ(v.at("session").asString(), "sess-1");
  const dpm::Notification back = notificationFromJson(v);
  EXPECT_EQ(back.kind, n.kind);
  EXPECT_EQ(back.designer, n.designer);
  EXPECT_EQ(back.stage, n.stage);
  ASSERT_TRUE(back.constraintId.has_value());
  EXPECT_EQ(back.constraintId->value, 7u);
  ASSERT_TRUE(back.propertyId.has_value());
  EXPECT_EQ(back.propertyId->value, 2u);
  EXPECT_EQ(back.text, n.text);
}

TEST(Protocol, NotificationOmitsAbsentOptionals) {
  dpm::Notification n;
  n.kind = dpm::NotificationKind::ResyncRequired;
  n.designer = "bob";
  n.stage = 1;
  n.text = "resync";
  const json::Value v = notificationToJson("s", n);
  EXPECT_EQ(v.find("constraint"), nullptr);
  EXPECT_EQ(v.find("property"), nullptr);
  const dpm::Notification back = notificationFromJson(v);
  EXPECT_FALSE(back.constraintId.has_value());
  EXPECT_FALSE(back.propertyId.has_value());
  EXPECT_EQ(back.kind, dpm::NotificationKind::ResyncRequired);
}

TEST(Protocol, UnknownNotificationKindThrows) {
  EXPECT_THROW(notificationKindFromName("Gossip"), adpm::InvalidArgumentError);
}

TEST(Protocol, SnapshotRoundTripsWithAndWithoutText) {
  service::SessionSnapshot snap;
  snap.id = "s0";
  snap.stage = 9;
  snap.complete = true;
  snap.evaluations = 123;
  snap.violations = 1;
  snap.text = "property p = [1,2]\n";
  snap.digest = "00ff00ff00ff00ff";

  const service::SessionSnapshot with =
      snapshotFromJson(snapshotToJson(snap, /*withText=*/true));
  EXPECT_EQ(with.id, snap.id);
  EXPECT_EQ(with.stage, snap.stage);
  EXPECT_EQ(with.complete, snap.complete);
  EXPECT_EQ(with.evaluations, snap.evaluations);
  EXPECT_EQ(with.violations, snap.violations);
  EXPECT_EQ(with.text, snap.text);
  EXPECT_EQ(with.digest, snap.digest);

  const service::SessionSnapshot without =
      snapshotFromJson(snapshotToJson(snap, /*withText=*/false));
  EXPECT_EQ(without.digest, snap.digest);
  EXPECT_TRUE(without.text.empty());
}

TEST(Protocol, WireErrorNamesFollowTheTaxonomy) {
  EXPECT_STREQ(wireErrorName(adpm::TimeoutError("t")), "Timeout");
  EXPECT_STREQ(wireErrorName(adpm::TransientError("t")), "Transient");
  // FaultInjectedError IS-A TransientError and must stay retryable.
  EXPECT_STREQ(wireErrorName(adpm::FaultInjectedError("f")), "Transient");
  EXPECT_STREQ(wireErrorName(adpm::InvalidArgumentError("i")),
               "InvalidArgument");
  EXPECT_STREQ(wireErrorName(ProtocolError("p")), "Protocol");
  EXPECT_STREQ(wireErrorName(adpm::ParseError("p", 1, 2)), "Parse");
  EXPECT_STREQ(wireErrorName(adpm::Error("e")), "Error");
  EXPECT_STREQ(wireErrorName(std::runtime_error("r")), "Internal");
}

TEST(Protocol, ThrowWireErrorRebuildsTypedExceptions) {
  EXPECT_THROW(throwWireError("Timeout", "m"), adpm::TimeoutError);
  EXPECT_THROW(throwWireError("Transient", "m"), adpm::TransientError);
  EXPECT_THROW(throwWireError("InvalidArgument", "m"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(throwWireError("Protocol", "m"), ProtocolError);
  EXPECT_THROW(throwWireError("Error", "m"), adpm::Error);
  EXPECT_THROW(throwWireError("SomethingNew", "m"), adpm::Error);
  // A Timeout must not be catchable as Transient (it may have executed).
  bool caughtAsTransient = false;
  try {
    throwWireError("Timeout", "m");
  } catch (const adpm::TransientError&) {
    caughtAsTransient = true;
  } catch (const adpm::Error&) {
  }
  EXPECT_FALSE(caughtAsTransient);
}

TEST(Protocol, ErrorMessageSurvivesTheRoundTrip) {
  try {
    throwWireError(wireErrorName(adpm::TransientError("wal append rolled back")),
                   "wal append rolled back");
    FAIL() << "did not throw";
  } catch (const adpm::TransientError& e) {
    EXPECT_STREQ(e.what(), "wal append rolled back");
  }
}

}  // namespace
}  // namespace adpm::net
