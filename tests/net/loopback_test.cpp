// End-to-end wire tests: a real net::Server on a loopback socket, driven by
// net::Client / runWireLoad.  Covers the ISSUE-6 acceptance surface:
// concurrent clients with digest verification, WAL recovery bit-identity
// across the process boundary (simulated by a fresh store), graceful
// shutdown semantics, the typed error taxonomy over the wire, subscription
// pushes, and malformed-frame handling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dddl/writer.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire_load.hpp"
#include "scenarios/sensing.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::net {
namespace {

namespace fs = std::filesystem;
namespace json = util::json;
using namespace std::chrono_literals;

std::string sensingDddl() {
  static const std::string text =
      dddl::write(scenarios::sensingSystemScenario());
  return text;
}

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_loopback_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static service::SessionStore::Options storeOptions(
      const std::string& walDir = {}) {
    service::SessionStore::Options o;
    o.executor.threads = 2;
    o.walDir = walDir;
    return o;
  }

  static Client::Options clientOptions(std::uint16_t port) {
    Client::Options o;
    o.port = port;
    return o;
  }

  fs::path dir_;
};

TEST_F(LoopbackTest, PortIsPublishedSafelyToConcurrentPollers) {
  // Regression for an unsynchronized publish found by the thread-safety
  // migration: start() wrote the bound port into a plain uint16_t while
  // other threads (CLI status printers, tests) could already be polling
  // port().  The field is atomic now; a poller must observe exactly 0 (not
  // yet bound) or the final bound port — never a torn or stale-forever
  // value — and must see the bound port once start() has returned.
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});

  std::atomic<bool> stop{false};
  std::atomic<std::uint16_t> seen{0};
  std::thread poller([&] {
    while (!stop.load()) {
      const std::uint16_t p = server.port();
      if (p != 0) seen.store(p);
    }
  });

  const std::uint16_t port = server.start();
  ASSERT_NE(port, 0);
  // The poller must converge on the bound port now that start() returned.
  while (seen.load() != port) std::this_thread::yield();
  stop.store(true);
  poller.join();
  EXPECT_EQ(seen.load(), port);
  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(LoopbackTest, FourConcurrentClientsCompleteAndMatchDigests) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  WireLoadOptions load;
  load.port = port;
  load.sessions = 4;
  load.dddl = sensingDddl();
  load.sim.seed = 11;
  const WireLoadReport report = runWireLoad(load);

  EXPECT_EQ(report.sessions, 4u);
  EXPECT_EQ(report.completedSessions, 4u);
  EXPECT_EQ(report.failedSessions, 0u);
  EXPECT_EQ(report.digestMismatches, 0u);
  EXPECT_GT(report.operations, 0u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(LoopbackTest, WalRecoveryIsBitIdenticalAfterWireLoad) {
  const std::string walDir = dir_.string();
  std::map<std::string, std::string> digests;
  {
    service::SessionStore store{storeOptions(walDir)};
    Server server(store, Server::Options{});
    const std::uint16_t port = server.start();

    WireLoadOptions load;
    load.port = port;
    load.sessions = 2;
    load.dddl = sensingDddl();
    load.sim.seed = 5;
    const WireLoadReport report = runWireLoad(load);
    ASSERT_EQ(report.failedSessions, 0u);
    ASSERT_EQ(report.digestMismatches, 0u);

    for (const std::string& id : store.ids()) {
      digests[id] = store.snapshot(id).get().digest;
    }
    ASSERT_EQ(digests.size(), 2u);
    EXPECT_TRUE(server.shutdown(5s));
  }

  // A fresh store replaying the WALs must land on bit-identical state —
  // the digest is a content hash of the full snapshot text.
  service::SessionStore fresh{storeOptions(walDir)};
  const std::vector<std::string> ids = fresh.recover();
  ASSERT_EQ(ids.size(), digests.size());
  EXPECT_TRUE(fresh.recoverErrors().empty());
  for (const auto& [id, digest] : digests) {
    EXPECT_EQ(fresh.snapshot(id).get().digest, digest) << id;
  }
}

TEST_F(LoopbackTest, GracefulShutdownAnnouncesAndRefusesMutations) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  Client::Options copts = clientOptions(port);
  copts.maxAttempts = 1;  // surface the drain refusal instead of retrying
  Client client{copts};
  client.connect();
  client.openDddl("drain-0", sensingDddl(), /*adpm=*/true);

  // Park the session strand so the drain window stays open long enough for
  // the refused Apply below to be deterministic.
  (void)store.withSession("drain-0", [](service::Session&) {
    std::this_thread::sleep_for(700ms);
  });

  bool drained = false;
  std::thread stopper(
      [&server, &drained] { drained = server.shutdown(10s); });
  std::this_thread::sleep_for(100ms);  // draining_ set at shutdown() entry

  dpm::Operation op;
  op.designer = "ana";
  EXPECT_THROW(client.apply("drain-0", op), adpm::TransientError);

  stopper.join();
  EXPECT_TRUE(drained);

  // The farewell was flushed before the close; pump() dispatches it.
  client.pump(/*waitMs=*/500);
  EXPECT_TRUE(client.serverShuttingDown());
}

TEST_F(LoopbackTest, TypedErrorsRoundTripOverTheWire) {
  service::SessionStore store{storeOptions()};
  Server::Options opts;
  Server server(store, opts);  // no scenario registry on this server
  const std::uint16_t port = server.start();

  Client client{clientOptions(port)};
  client.connect();

  dpm::Operation op;
  op.designer = "ana";
  EXPECT_THROW(client.apply("no-such-session", op),
               adpm::InvalidArgumentError);
  EXPECT_THROW(client.openScenario("s", "sensing", true),
               adpm::InvalidArgumentError);

  // The connection survives typed failures — they are responses, not
  // protocol violations.
  client.openDddl("s", sensingDddl(), true);
  const service::SessionSnapshot snap = client.snapshot("s", false);
  EXPECT_EQ(snap.id, "s");

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(LoopbackTest, SubscriptionStreamsNotifications) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  WireLoadOptions load;
  load.port = port;
  load.sessions = 1;
  load.dddl = sensingDddl();
  load.subscribe = true;
  load.sim.seed = 3;
  const WireLoadReport report = runWireLoad(load);
  EXPECT_EQ(report.failedSessions, 0u);
  EXPECT_GT(report.notificationsReceived, 0u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(LoopbackTest, StatusReportsSessionsAndSubscriberQueues) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  Client client{clientOptions(port)};
  client.connect();
  client.openDddl("st-0", sensingDddl(), true);
  client.subscribe("st-0", "watcher");

  const json::Value v = client.status();
  bool found = false;
  for (const json::Value& id : v.at("sessions").asArray()) {
    if (id.asString() == "st-0") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(v.at("draining").asBool());
  const json::Value& subs = v.at("bus").at("subscribers");
  ASSERT_EQ(subs.asArray().size(), 1u);
  const json::Value& sub = subs.asArray()[0];
  EXPECT_EQ(sub.at("session").asString(), "st-0");
  EXPECT_EQ(sub.at("designer").asString(), "watcher");
  EXPECT_GT(sub.at("capacity").asNumber(), 0.0);
  EXPECT_GT(v.at("server").at("frames").asNumber(), 0.0);

  EXPECT_TRUE(server.shutdown(5s));
}

// -- raw-socket protocol violations -------------------------------------------

namespace {

void writeRaw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const IoResult r = writeSome(fd, bytes.data() + sent, bytes.size() - sent);
    if (r.status == IoStatus::WouldBlock) {
      waitFd(fd, /*forWrite=*/true, /*timeoutMs=*/-1);
      continue;
    }
    sent += r.n;
  }
}

/// Reads frames until EOF or the deadline; returns them.
std::vector<Frame> readUntilEof(int fd, bool& sawEof, int timeoutMs) {
  std::vector<Frame> frames;
  FrameParser parser;
  sawEof = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    while (std::optional<Frame> f = parser.next()) {
      frames.push_back(std::move(*f));
    }
    if (!waitFd(fd, /*forWrite=*/false, 100)) continue;
    char buf[4096];
    const IoResult r = readSome(fd, buf, sizeof buf);
    if (r.status == IoStatus::Eof) {
      sawEof = true;
      break;
    }
    if (r.status == IoStatus::Ok) parser.feed(buf, r.n);
  }
  while (std::optional<Frame> f = parser.next()) {
    frames.push_back(std::move(*f));
  }
  return frames;
}

}  // namespace

TEST_F(LoopbackTest, MalformedPayloadGetsErrorFrameThenClose) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  ScopedFd fd = connectTcp("127.0.0.1", port, 2000);
  writeRaw(fd.get(), encodeFrame(FrameType::Apply, "this is not json"));

  bool sawEof = false;
  const std::vector<Frame> frames = readUntilEof(fd.get(), sawEof, 3000);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Error);
  const json::Value v = json::parse(frames[0].payload);
  EXPECT_EQ(v.at("error").asString(), "Protocol");
  EXPECT_TRUE(sawEof) << "server must drop the connection after a "
                         "protocol violation";
  EXPECT_GE(server.stats().protocolErrors, 1u);

  EXPECT_TRUE(server.shutdown(5s));
}

TEST_F(LoopbackTest, NonRequestFrameTypeIsAProtocolViolation) {
  service::SessionStore store{storeOptions()};
  Server server(store, Server::Options{});
  const std::uint16_t port = server.start();

  ScopedFd fd = connectTcp("127.0.0.1", port, 2000);
  // A client must never send a response/push type at the server.
  writeRaw(fd.get(), encodeFrame(FrameType::Notification, "{}"));

  bool sawEof = false;
  const std::vector<Frame> frames = readUntilEof(fd.get(), sawEof, 3000);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Error);
  EXPECT_TRUE(sawEof);

  EXPECT_TRUE(server.shutdown(5s));
}

}  // namespace
}  // namespace adpm::net
