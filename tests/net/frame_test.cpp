#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace adpm::net {
namespace {

TEST(Frame, LittleEndianHelpersRoundTrip) {
  std::string out;
  putU32le(out, 0x01020304u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(out[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0x01);
  EXPECT_EQ(getU32le(reinterpret_cast<const unsigned char*>(out.data())),
            0x01020304u);
  for (const std::uint32_t v : {0u, 1u, 255u, 256u, 0xffffffffu, 0x80000000u}) {
    std::string bytes;
    putU32le(bytes, v);
    EXPECT_EQ(getU32le(reinterpret_cast<const unsigned char*>(bytes.data())),
              v);
  }
}

TEST(Frame, EncodeLayout) {
  const std::string bytes = encodeFrame(FrameType::Apply, "{}");
  // [u32 len][u8 type][payload]; len = payload + 1 type byte.
  ASSERT_EQ(bytes.size(), 4u + 1u + 2u);
  EXPECT_EQ(getU32le(reinterpret_cast<const unsigned char*>(bytes.data())),
            3u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]),
            static_cast<unsigned char>(FrameType::Apply));
  EXPECT_EQ(bytes.substr(5), "{}");
}

TEST(Frame, EmptyPayloadEncodes) {
  const std::string bytes = encodeFrame(FrameType::Status, "");
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(getU32le(reinterpret_cast<const unsigned char*>(bytes.data())),
            1u);
}

TEST(FrameParser, ReassemblesByteByByte) {
  const std::string bytes =
      encodeFrame(FrameType::Result, R"({"req":1,"ok":true})");
  FrameParser parser;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.feed(bytes.data() + i, 1);
    EXPECT_FALSE(parser.next().has_value()) << "frame complete too early";
  }
  parser.feed(bytes.data() + bytes.size() - 1, 1);
  const std::optional<Frame> frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::Result);
  EXPECT_EQ(frame->payload, R"({"req":1,"ok":true})");
  EXPECT_EQ(parser.pendingBytes(), 0u);
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, DrainsMultipleFramesFromOneFeed) {
  std::string stream;
  stream += encodeFrame(FrameType::Apply, "a");
  stream += encodeFrame(FrameType::Snapshot, "bb");
  stream += encodeFrame(FrameType::Notification, "ccc");
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  const std::optional<Frame> f1 = parser.next();
  const std::optional<Frame> f2 = parser.next();
  const std::optional<Frame> f3 = parser.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_EQ(f1->type, FrameType::Apply);
  EXPECT_EQ(f1->payload, "a");
  EXPECT_EQ(f2->type, FrameType::Snapshot);
  EXPECT_EQ(f2->payload, "bb");
  EXPECT_EQ(f3->type, FrameType::Notification);
  EXPECT_EQ(f3->payload, "ccc");
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, ReportsTornTail) {
  const std::string bytes = encodeFrame(FrameType::Apply, "payload");
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size() - 3);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.pendingBytes(), bytes.size() - 3);
}

TEST(FrameParser, ZeroLengthFrameIsProtocolError) {
  std::string bytes;
  putU32le(bytes, 0);  // a frame must carry at least the type byte
  bytes += "xxxx";
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_THROW(parser.next(), ProtocolError);
}

TEST(FrameParser, OversizedLengthIsProtocolErrorBeforeBuffering) {
  std::string bytes;
  putU32le(bytes, 0xffffffffu);  // 4 GiB claim; must throw, not allocate
  bytes.push_back(static_cast<char>(FrameType::Apply));
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  // The length is validated as soon as the header is complete — before any
  // of the claimed payload is buffered.
  EXPECT_THROW(parser.next(), ProtocolError);
}

TEST(FrameParser, HonoursCustomPayloadCap) {
  FrameParser parser(/*maxPayload=*/8);
  const std::string small = encodeFrame(FrameType::Apply, "12345678");
  parser.feed(small.data(), small.size());
  EXPECT_TRUE(parser.next().has_value());

  FrameParser strict(/*maxPayload=*/8);
  const std::string big = encodeFrame(FrameType::Apply, "123456789");
  strict.feed(big.data(), big.size());
  EXPECT_THROW(strict.next(), ProtocolError);
}

TEST(FrameParser, LargePayloadRoundTrips) {
  const std::string payload(1u << 20, 'x');
  const std::string bytes = encodeFrame(FrameType::Result, payload);
  FrameParser parser;
  // Feed in 64 KiB chunks like the reactor does.
  for (std::size_t off = 0; off < bytes.size(); off += 64 * 1024) {
    parser.feed(bytes.data() + off, std::min<std::size_t>(64 * 1024,
                                                          bytes.size() - off));
  }
  const std::optional<Frame> frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), payload.size());
  EXPECT_EQ(frame->payload, payload);
}

TEST(Frame, TypePredicates) {
  for (const FrameType t : {FrameType::Open, FrameType::Apply,
                            FrameType::Guidance, FrameType::Verify,
                            FrameType::Snapshot, FrameType::Subscribe,
                            FrameType::Status, FrameType::CloseSession}) {
    EXPECT_TRUE(isRequestFrame(t)) << frameTypeName(t);
  }
  for (const FrameType t : {FrameType::Result, FrameType::Error,
                            FrameType::Notification, FrameType::Shutdown}) {
    EXPECT_FALSE(isRequestFrame(t)) << frameTypeName(t);
  }
  EXPECT_STREQ(frameTypeName(FrameType::Apply), "Apply");
  EXPECT_STREQ(frameTypeName(FrameType::Shutdown), "Shutdown");
}

}  // namespace
}  // namespace adpm::net
