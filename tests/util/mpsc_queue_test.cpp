#include "util/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace adpm::util {
namespace {

TEST(BoundedMpscQueue, FifoOrder) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.tryPop(), std::nullopt);
}

TEST(BoundedMpscQueue, DropOldestEvictsFrontAndCounts) {
  BoundedMpscQueue<int> q(3, OverflowPolicy::DropOldest);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.dropped(), 2u);  // 0 and 1 evicted
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedMpscQueue, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.dropped(), 1u);
}

TEST(BoundedMpscQueue, BlockPolicyBackpressuresProducer) {
  BoundedMpscQueue<int> q(2, OverflowPolicy::Block);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));

  std::atomic<bool> thirdAccepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // must wait for the consumer
    thirdAccepted = true;
  });
  // The producer cannot finish until something is popped.  (No sleep-based
  // assertion of "still blocked" — just the ordering guarantee below.)
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(thirdAccepted.load());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(BoundedMpscQueue, CloseWakesBlockedProducerAndRefusesPush) {
  BoundedMpscQueue<int> q(1, OverflowPolicy::Block);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(2));  // woken by close, refused
  });
  q.close();
  producer.join();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));
  // Queued items stay poppable after close; then pop reports closed-empty.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedMpscQueue, ManyProducersOneConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedMpscQueue<int> q(16, OverflowPolicy::Block);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const std::optional<int> item = q.pop();
    ASSERT_TRUE(item.has_value());
    seen.push_back(*item);
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(q.dropped(), 0u);
  // Per-producer subsequences stay in FIFO order.
  std::vector<int> last(kProducers, -1);
  for (const int item : seen) {
    const int p = item / kPerProducer;
    EXPECT_LT(last[p], item);
    last[p] = item;
  }
}

// Concurrent DropOldest accounting: with P producers pushing a known total
// into a small queue, every push "succeeds" (DropOldest never refuses) and
// each evicted item is counted exactly once — so items drained by the
// consumer plus dropped() must equal the total, with no double-counting and
// no silent loss.  Runs under TSan in CI.
TEST(BoundedMpscQueue, DropOldestManyProducersExactDropAccounting) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  constexpr int kTotal = kProducers * kPerProducer;
  BoundedMpscQueue<int> q(8, OverflowPolicy::DropOldest);

  std::atomic<int> started{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Rendezvous so the producers genuinely contend.
      started.fetch_add(1);
      while (started.load() < kProducers) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));  // DropOldest never fails
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // All producers done: drain what survived.
  std::vector<bool> seen(kTotal, false);
  std::size_t delivered = 0;
  while (std::optional<int> item = q.tryPop()) {
    ASSERT_GE(*item, 0);
    ASSERT_LT(*item, kTotal);
    ASSERT_FALSE(seen[*item]) << "item " << *item << " delivered twice";
    seen[*item] = true;
    ++delivered;
  }
  ASSERT_LE(delivered, q.capacity());
  // Exactness: delivered ∪ dropped partitions the pushes.
  EXPECT_EQ(delivered + q.dropped(), static_cast<std::size_t>(kTotal));
}

}  // namespace
}  // namespace adpm::util
