#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adpm::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.header({"Case", "Ops", "Evals"});
  t.row({"sensing", "120", "345"});
  t.row({"receiver", "98", "1020"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Case"), std::string::npos);
  EXPECT_NE(s.find("sensing"), std::string::npos);
  EXPECT_NE(s.find("1020"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"Name", "Value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string s = t.render();
  std::istringstream in(s);
  std::string line;
  std::getline(in, line);  // header
  const auto headerValueCol = line.find("Value");
  std::getline(in, line);  // rule
  std::getline(in, line);  // row "a"
  // Numeric cells right-align inside the column, so "1" ends where the
  // column ends.
  EXPECT_GE(line.size(), headerValueCol);
}

TEST(TextTable, RuleSpansTable) {
  TextTable t;
  t.header({"X"});
  t.row({"data"});
  t.rule();
  t.row({"more"});
  const std::string s = t.render();
  // Two rules: one under the header, one explicit.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = s.find("----", pos)) != std::string::npos) {
    ++count;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(count, 2u);
}

TEST(TextTable, RowsMayBeShorterThanHeader) {
  TextTable t;
  t.header({"A", "B", "C"});
  t.row({"only-a"});
  EXPECT_NO_THROW(t.render());
}

TEST(FormatNumber, TrimsAndRounds) {
  EXPECT_EQ(formatNumber(3.0), "3");
  EXPECT_EQ(formatNumber(0.5), "0.5");
  EXPECT_EQ(formatNumber(12345.678, 4), "1.235e+04");
  EXPECT_EQ(formatNumber(12345.678, 8), "12345.678");
}

TEST(FormatNumber, SpecialValues) {
  EXPECT_EQ(formatNumber(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(formatNumber(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatNumber(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatExact, RoundTripsThroughParsing) {
  for (double v : {0.1, 1.0 / 3.0, 2.5e-17, -123456.789012345, 1e22}) {
    const std::string text = formatExact(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
  EXPECT_EQ(formatExact(3.0), "3");
  EXPECT_EQ(formatExact(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatExact(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(WriteCsv, BasicRows) {
  std::ostringstream out;
  writeCsv(out, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(WriteCsv, EscapesSpecialCharacters) {
  std::ostringstream out;
  writeCsv(out, {}, {{"has,comma", "has\"quote"}});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\"\n");
}

}  // namespace
}  // namespace adpm::util
