#include "util/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace adpm::util {
namespace {

TEST(Executor, RunsPostedTasks) {
  Executor ex(Executor::Options{.threads = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) ex.post([&] { ran.fetch_add(1); });
  ex.drain();
  EXPECT_EQ(ran.load(), 100);
}

TEST(Executor, ThreadsZeroFallsBackToAtLeastOneWorker) {
  Executor ex(Executor::Options{.threads = 0});
  EXPECT_GE(ex.workerCount(), 1u);
  std::atomic<bool> ran{false};
  ex.post([&] { ran = true; });
  ex.drain();
  EXPECT_TRUE(ran.load());
}

TEST(Executor, DeterministicModeRunsInlineOnPostingThread) {
  Executor ex(Executor::Options{.deterministic = true});
  EXPECT_TRUE(ex.deterministic());
  EXPECT_EQ(ex.workerCount(), 0u);
  const std::thread::id self = std::this_thread::get_id();
  bool ran = false;
  ex.post([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
  EXPECT_TRUE(ran);  // already done at post() return
  ex.drain();        // no-op, must not hang
}

TEST(Executor, StrandSerializesAndPreservesFifo) {
  Executor ex(Executor::Options{.threads = 4});
  auto strand = ex.makeStrand();

  std::vector<int> order;
  std::atomic<int> inFlight{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 500; ++i) {
    strand->post([&, i] {
      if (inFlight.fetch_add(1) != 0) overlapped = true;
      order.push_back(i);  // safe: strand serializes
      inFlight.fetch_sub(1);
    });
  }
  ex.drain();
  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, DistinctStrandsRunInParallel) {
  Executor ex(Executor::Options{.threads = 2});
  auto a = ex.makeStrand();
  auto b = ex.makeStrand();

  // Rendezvous: each strand's task waits for the other to start.  If the
  // strands shared a serialization bit, the test would deadlock — with the
  // latch below we fail fast instead of hanging forever.
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  bool bothArrived = false;
  const auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(m);
    if (++arrived == 2) {
      bothArrived = true;
      cv.notify_all();
    } else {
      cv.wait_for(lock, std::chrono::seconds(30), [&] { return arrived == 2; });
    }
  };
  a->post(rendezvous);
  b->post(rendezvous);
  ex.drain();
  EXPECT_TRUE(bothArrived);
}

TEST(Executor, StrandFifoHoldsUnderConcurrentPosts) {
  // Many external threads post to one strand; each thread's own sequence
  // must come out in order (cross-thread interleaving is unspecified).
  Executor ex(Executor::Options{.threads = 3});
  auto strand = ex.makeStrand();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;

  std::vector<int> seen;  // strand-serialized
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int value = t * kPerThread + i;
        strand->post([&seen, value] { seen.push_back(value); });
      }
    });
  }
  for (std::thread& p : posters) p.join();
  ex.drain();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> last(kThreads, -1);
  for (const int v : seen) {
    const int t = v / kPerThread;
    EXPECT_LT(last[t], v);
    last[t] = v;
  }
}

TEST(Executor, DeterministicStrandHandlesNestedPostsWithoutRecursion) {
  Executor ex(Executor::Options{.deterministic = true});
  auto strand = ex.makeStrand();
  std::vector<int> order;
  strand->post([&] {
    order.push_back(0);
    strand->post([&] { order.push_back(2); });  // queued, not run inline
    order.push_back(1);
  });
  // The outer drain loop ran the nested task after the outer one returned.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Executor, ChainedStrandTasksComplete) {
  // A task that posts its own successor (the load generator's pump pattern);
  // drain() must wait for the whole chain.
  Executor ex(Executor::Options{.threads = 2});
  auto strand = ex.makeStrand();
  auto counter = std::make_shared<std::atomic<int>>(0);

  std::function<void()> step = [&ex, strand, counter, &step] {
    if (counter->fetch_add(1) + 1 < 50) strand->post(step);
  };
  strand->post(step);
  ex.drain();
  EXPECT_EQ(counter->load(), 50);
}

TEST(Executor, DrainCoversStrandTasksPostedBeforeItStarts) {
  // Regression for a counting race: Strand::post used to publish the task
  // and only then increment the executor's pending count in a second
  // critical section, so an already-active dispatch could retire the new
  // task first, pending_ transiently hit zero, and drain() could return
  // while counted work was still queued.  The invariant checked here is
  // one-sided safe: every task whose post() returned before drain() was
  // called must be complete when drain() returns, no matter what a
  // concurrent poster does to the same strand.
  Executor ex(Executor::Options{.threads = 2});
  auto strand = ex.makeStrand();
  constexpr int kTasks = 16;
  for (int round = 0; round < 300; ++round) {
    std::atomic<int> doneBefore{0};
    std::atomic<int> doneRacing{0};
    for (int i = 0; i < kTasks; ++i) {
      strand->post([&] { doneBefore.fetch_add(1); });
    }
    std::thread racer([&] {
      for (int i = 0; i < kTasks; ++i) {
        strand->post([&] { doneRacing.fetch_add(1); });
      }
    });
    ex.drain();  // races with the posts above
    ASSERT_EQ(doneBefore.load(), kTasks);
    racer.join();
    ex.drain();
    ASSERT_EQ(doneRacing.load(), kTasks);
  }
}

TEST(Executor, ConcurrentDrainersAllObserveCompletion) {
  // Regression companion to the thread-safety-annotation migration: drain()
  // and workerLoop() were restructured from predicate-lambda waits into
  // explicit while loops around CondVar::wait (predicate lambdas defeat
  // Clang's analysis — the lambda body is checked as a separate function
  // that does not hold the caller's lock).  The rewrite must keep the
  // many-drainers contract: every thread blocked in drain() wakes once
  // pending work hits zero, including drainers that arrive mid-burst.
  Executor ex(Executor::Options{.threads = 4});
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i) {
      ex.post([&] { ran.fetch_add(1); });
    }
    constexpr int kDrainers = 4;
    std::vector<std::thread> drainers;
    drainers.reserve(kDrainers);
    for (int d = 0; d < kDrainers; ++d) {
      drainers.emplace_back([&] {
        ex.drain();
        // drain() returning means every counted task has finished.
        ASSERT_EQ(ran.load(), kTasks);
      });
    }
    for (std::thread& t : drainers) t.join();
  }
}

TEST(Executor, DrainIsReusable) {
  Executor ex(Executor::Options{.threads = 2});
  std::atomic<int> ran{0};
  ex.post([&] { ran.fetch_add(1); });
  ex.drain();
  EXPECT_EQ(ran.load(), 1);
  ex.post([&] { ran.fetch_add(1); });
  ex.drain();
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace adpm::util
