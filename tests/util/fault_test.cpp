#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

// The registry is a plain object callable in any build; only the
// ADPM_FAULT_POINT macro is compiled away when injection is off.  These
// tests drive check() directly, so they run (and CI runs them) under both
// settings.
namespace adpm::util {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().reset(); }
  void TearDown() override { FaultRegistry::instance().reset(); }
};

TEST_F(FaultRegistryTest, UnarmedPointNeverFires) {
  auto& reg = FaultRegistry::instance();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(reg.check("wal.append"), FaultAction::None);
  }
  EXPECT_EQ(reg.hits("wal.append"), 0u);  // unarmed hits are not tracked
  EXPECT_TRUE(reg.armed().empty());
}

TEST_F(FaultRegistryTest, EveryNthFiresDeterministically) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.action = FaultAction::Error;
  plan.everyNth = 3;
  reg.arm("wal.append", plan);

  std::vector<int> fires;
  for (int i = 1; i <= 12; ++i) {
    if (reg.check("wal.append") != FaultAction::None) fires.push_back(i);
  }
  EXPECT_EQ(fires, (std::vector<int>{3, 6, 9, 12}));
  EXPECT_EQ(reg.hits("wal.append"), 12u);
  EXPECT_EQ(reg.fired("wal.append"), 4u);
}

TEST_F(FaultRegistryTest, SeededProbabilityReproduces) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.action = FaultAction::Error;
  plan.probability = 0.3;
  plan.seed = 42;

  auto sequence = [&] {
    reg.reset();
    reg.arm("store.apply", plan);
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i) {
      fired.push_back(reg.check("store.apply") != FaultAction::None);
    }
    return fired;
  };
  const std::vector<bool> first = sequence();
  const std::vector<bool> second = sequence();
  EXPECT_EQ(first, second);  // same seed, same fire pattern
  // Sanity: p=0.3 over 64 hits should fire at least once and not always.
  std::size_t count = 0;
  for (const bool f : first) count += f ? 1 : 0;
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 64u);

  // A different seed gives a different pattern (overwhelmingly likely).
  plan.seed = 43;
  reg.reset();
  reg.arm("store.apply", plan);
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) {
    other.push_back(reg.check("store.apply") != FaultAction::None);
  }
  EXPECT_NE(first, other);
}

TEST_F(FaultRegistryTest, MaxFiresCapsThenGoesQuiet) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.action = FaultAction::Error;
  plan.everyNth = 1;
  plan.maxFires = 2;
  reg.arm("store.apply", plan);

  EXPECT_EQ(reg.check("store.apply"), FaultAction::Error);
  EXPECT_EQ(reg.check("store.apply"), FaultAction::Error);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(reg.check("store.apply"), FaultAction::None);
  }
  EXPECT_EQ(reg.fired("store.apply"), 2u);
  EXPECT_EQ(reg.hits("store.apply"), 7u);
}

TEST_F(FaultRegistryTest, DelayReturnsNoneToTheSite) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.action = FaultAction::Delay;
  plan.everyNth = 1;
  plan.delayMicros = 1;  // keep the test fast
  reg.arm("executor.dispatch", plan);
  EXPECT_EQ(reg.check("executor.dispatch"), FaultAction::None);
  EXPECT_EQ(reg.fired("executor.dispatch"), 1u);
}

TEST_F(FaultRegistryTest, DisarmStopsFiring) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.everyNth = 1;
  reg.arm("wal.fsync", plan);
  EXPECT_EQ(reg.check("wal.fsync"), FaultAction::Error);
  reg.disarm("wal.fsync");
  EXPECT_EQ(reg.check("wal.fsync"), FaultAction::None);
  EXPECT_TRUE(reg.armed().empty());
}

TEST_F(FaultRegistryTest, ScopedFaultDisarmsOnExit) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.everyNth = 1;
  {
    ScopedFault scoped("bus.publish", plan);
    EXPECT_EQ(reg.check("bus.publish"), FaultAction::Error);
  }
  EXPECT_EQ(reg.check("bus.publish"), FaultAction::None);
}

TEST_F(FaultRegistryTest, ArmFromSpecParsesClauses) {
  auto& reg = FaultRegistry::instance();
  reg.armFromSpec(
      "wal.append=short-write:every=3;"
      "store.apply=error:p=0.25:seed=7:max=2;"
      "executor.dispatch=delay:every=1:us=5");
  const std::vector<std::string> armed = reg.armed();
  EXPECT_EQ(armed.size(), 3u);

  // every=3 short-write behaves as armed.
  EXPECT_EQ(reg.check("wal.append"), FaultAction::None);
  EXPECT_EQ(reg.check("wal.append"), FaultAction::None);
  EXPECT_EQ(reg.check("wal.append"), FaultAction::ShortWrite);
}

TEST_F(FaultRegistryTest, ArmFromSpecRejectsGarbage) {
  auto& reg = FaultRegistry::instance();
  EXPECT_THROW(reg.armFromSpec("no-equals-sign"), adpm::InvalidArgumentError);
  EXPECT_THROW(reg.armFromSpec("p=bogus-action"), adpm::InvalidArgumentError);
  EXPECT_THROW(reg.armFromSpec("p=error:every=x"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(reg.armFromSpec("p=error:unknown=1"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(reg.armFromSpec("=error"), adpm::InvalidArgumentError);
}

TEST_F(FaultRegistryTest, ResetClearsPointsAndCounters) {
  auto& reg = FaultRegistry::instance();
  FaultPlan plan;
  plan.everyNth = 1;
  reg.arm("wal.open", plan);
  EXPECT_EQ(reg.check("wal.open"), FaultAction::Error);
  reg.reset();
  EXPECT_TRUE(reg.armed().empty());
  EXPECT_EQ(reg.hits("wal.open"), 0u);
  EXPECT_EQ(reg.fired("wal.open"), 0u);
  EXPECT_EQ(reg.check("wal.open"), FaultAction::None);
}

}  // namespace
}  // namespace adpm::util
