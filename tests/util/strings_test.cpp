#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace adpm::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"p", "q", "r"};
  EXPECT_EQ(join(parts, "::"), "p::q::r");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(startsWith("constraint", "con"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_FALSE(startsWith("", "x"));
  EXPECT_FALSE(startsWith("ab", "abc"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(toLower("MiXeD-42"), "mixed-42");
  EXPECT_EQ(toLower(""), "");
}

}  // namespace
}  // namespace adpm::util
