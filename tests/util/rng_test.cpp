#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace adpm::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLow) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform(3.0, 3.0), 3.0);
  EXPECT_EQ(rng.uniform(4.0, 1.0), 4.0);
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversAllBuckets) {
  Rng rng(13);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(17);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PickReturnsElementOfVector) {
  Rng rng(29);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  const auto original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);
}

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace adpm::util
