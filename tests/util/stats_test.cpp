#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgumentError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgumentError);
}

TEST(Histogram, BucketsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-5.0);  // clamps to bucket 0
  h.add(25.0);  // clamps to bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucketLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(4), 10.0);
  EXPECT_THROW(h.bucketLow(5), InvalidArgumentError);
}

TEST(Histogram, RenderShowsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(VectorStats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(VectorStats, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_EQ(median({}), 0.0);
}

}  // namespace
}  // namespace adpm::util
