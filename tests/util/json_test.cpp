#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace adpm::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").isNull());
  EXPECT_EQ(parse("true").asBool(), true);
  EXPECT_EQ(parse("false").asBool(), false);
  EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-0.5e2").asNumber(), -50.0);
  EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").asString(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("A")").asString(), "A");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = parse(R"({"a":[1,2,{"b":true}],"c":"x"})");
  const Array& a = v.at("a").asArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].asNumber(), 1.0);
  EXPECT_TRUE(a[2].at("b").asBool());
  EXPECT_EQ(v.at("c").asString(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), adpm::InvalidArgumentError);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), adpm::ParseError);
  EXPECT_THROW(parse("{"), adpm::ParseError);
  EXPECT_THROW(parse("[1,]"), adpm::ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), adpm::ParseError);
  EXPECT_THROW(parse("nul"), adpm::ParseError);
  EXPECT_THROW(parse("\"unterminated"), adpm::ParseError);
  EXPECT_THROW(parse("1 2"), adpm::ParseError);  // trailing garbage
  EXPECT_THROW(parse("{\"a\" 1}"), adpm::ParseError);
}

TEST(Json, KindMismatchThrows) {
  EXPECT_THROW(parse("1").asString(), adpm::InvalidArgumentError);
  EXPECT_THROW(parse("\"s\"").asNumber(), adpm::InvalidArgumentError);
  EXPECT_THROW(parse("[]").asObject(), adpm::InvalidArgumentError);
}

TEST(Json, SerializeIsCanonical) {
  Value obj;
  obj.set("b", Value(1));
  obj.set("a", Value("x"));
  obj.set("list", Value(Array{Value(true), Value(nullptr)}));
  // Insertion order, no whitespace.
  EXPECT_EQ(serialize(obj), R"({"b":1,"a":"x","list":[true,null]})");
}

TEST(Json, CanonicalRoundTrip) {
  const std::string canonical =
      R"({"t":"op","op":{"kind":"Synthesis","assign":[[1,30.5]]}})";
  EXPECT_EQ(serialize(parse(canonical)), canonical);
}

TEST(Json, DoublesRoundTripBitIdentically) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           std::nextafter(2.0, 3.0),
                           1e-300,
                           -9.87654321012345678e18,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const std::string text = formatNumber(v);
    const double back = parse(text).asNumber();
    EXPECT_EQ(back, v) << text;  // exact, not approximate
  }
}

TEST(Json, EscapeHandlesControlCharacters) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("line\n"), "line\\n");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EqualityIsStructural) {
  EXPECT_EQ(parse(R"({"a":[1,2]})"), parse(R"({"a":[1,2]})"));
  EXPECT_FALSE(parse(R"({"a":1})") == parse(R"({"a":2})"));
  EXPECT_FALSE(parse("1") == parse("\"1\""));
}

}  // namespace
}  // namespace adpm::util::json
