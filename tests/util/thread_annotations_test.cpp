// Runtime semantics of the annotated locking primitives
// (util/thread_annotations.hpp).  The compile-time side — Clang rejecting
// unguarded access — is covered by the negative compile tests in
// tests/static/; these tests pin down that the wrappers behave exactly
// like the std primitives they replace, on every compiler.
#include "util/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace adpm::util {
namespace {

TEST(ThreadAnnotations, LockGuardProvidesMutualExclusion) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(ThreadAnnotations, TryLockReflectsContention) {
  Mutex mutex;
  mutex.lock();
  std::atomic<bool> acquired{true};
  // try_lock from another thread must fail while this one holds the mutex
  // (same-thread try_lock on a std::mutex is undefined behaviour).
  std::thread probe([&] { acquired = mutex.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(ThreadAnnotations, UniqueLockUnlockRelockTracksOwnership) {
  Mutex mutex;
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.ownsLock());
  lock.unlock();
  EXPECT_FALSE(lock.ownsLock());
  {
    // While released, others can take the mutex.
    LockGuard inner(mutex);
  }
  lock.lock();
  EXPECT_TRUE(lock.ownsLock());
}

TEST(ThreadAnnotations, CondVarWaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      LockGuard lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });
  {
    UniqueLock lock(mutex);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
    EXPECT_TRUE(lock.ownsLock());
  }
  waker.join();
}

TEST(ThreadAnnotations, CondVarWaitForTimesOut) {
  Mutex mutex;
  CondVar cv;
  UniqueLock lock(mutex);
  const auto status = cv.wait_for(lock, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_TRUE(lock.ownsLock());  // re-acquired after the timed wait
}

TEST(ThreadAnnotations, CondVarWaitUntilHonorsDeadline) {
  Mutex mutex;
  CondVar cv;
  bool done = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      LockGuard lock(mutex);
      done = true;
    }
    cv.notify_all();
  });
  bool observed;
  {
    // The deadline-loop idiom the codebase uses instead of predicate waits
    // (predicate lambdas defeat the thread-safety analysis).
    UniqueLock lock(mutex);
    while (!done && cv.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
    observed = done;
  }
  waker.join();
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace adpm::util
