// Constraint generation during the process (paper §2.2: "this DPM also
// generates any necessary constraints and incorporates them in C_n") and the
// decomposition operator that triggers it.
#include <gtest/gtest.h>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using constraint::Status;
using interval::Domain;

ScenarioSpec stagedScenario() {
  ScenarioSpec s;
  s.name = "staged";
  s.addObject("sys");
  s.addObject("child", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "child", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "child", Domain::continuous(0, 100));
  // Top-level spec exists from the start.
  const auto budget = s.addConstraint(
      {"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  // The child's internal model is generated when the child is released.
  const auto model = s.addConstraint(
      {"model", s.pvar(y), Relation::Eq, 2.0 * s.pvar(x), {}});
  const auto top = s.addProblem({"Top", "sys", "lead", {}, {cap}, {budget},
                                 std::nullopt, {}, true});
  const auto child = s.addProblem({"Child", "child", "dana", {cap}, {x, y},
                                   {model}, top, {}, /*startReady=*/false});
  s.constraints[model].generatedBy = child;
  s.require(cap, 50.0);
  return s;
}

TEST(StagedConstraints, InactiveUntilDecomposition) {
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = true});
  instantiate(stagedScenario(), mgr);

  // Both constraints are registered (stable ids) but only the budget is
  // active before decomposition.
  EXPECT_EQ(mgr.network().constraintCount(), 2u);
  EXPECT_EQ(mgr.network().activeConstraintCount(), 1u);
  EXPECT_TRUE(mgr.network().isActive(ConstraintId{0}));
  EXPECT_FALSE(mgr.network().isActive(ConstraintId{1}));
  EXPECT_EQ(mgr.problem(ProblemId{1}).status, ProblemStatus::Unassigned);

  Operation decompose;
  decompose.kind = OperatorKind::Decomposition;
  decompose.problem = ProblemId{0};
  decompose.designer = "lead";
  const auto r = mgr.execute(decompose);

  EXPECT_EQ(mgr.problem(ProblemId{1}).status, ProblemStatus::Ready);
  EXPECT_EQ(mgr.network().activeConstraintCount(), 2u);
  ASSERT_EQ(r.record.constraintsGenerated.size(), 1u);
  EXPECT_EQ(r.record.constraintsGenerated[0], ConstraintId{1});
}

TEST(StagedConstraints, InactiveConstraintIsInvisibleToEvaluation) {
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = true});
  instantiate(stagedScenario(), mgr);
  EXPECT_THROW(mgr.network().evaluate(ConstraintId{1}),
               adpm::InvalidArgumentError);

  // Propagation ignores the staged model: y is not pinned to 2x yet.
  constraint::Propagator prop;
  const auto result = prop.run(mgr.network());
  EXPECT_NEAR(result.hulls[2].hi(), 50.0, 1e-3);  // only the budget narrows y
}

TEST(StagedConstraints, GeneratedConstraintParticipatesAfterwards) {
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = true});
  instantiate(stagedScenario(), mgr);

  Operation decompose;
  decompose.kind = OperatorKind::Decomposition;
  decompose.problem = ProblemId{0};
  decompose.designer = "lead";
  mgr.execute(decompose);

  // Bind x; the generated model must now pin y = 2x in the guidance.
  Operation bind;
  bind.kind = OperatorKind::Synthesis;
  bind.problem = ProblemId{1};
  bind.designer = "dana";
  bind.assignments.emplace_back(PropertyId{1}, 10.0);
  mgr.execute(bind);
  ASSERT_NE(mgr.latestGuidance(), nullptr);
  const auto& gy = mgr.latestGuidance()->of(PropertyId{2});
  EXPECT_NEAR(gy.feasible.minValue(), 20.0, 1e-4);
  EXPECT_NEAR(gy.feasible.maxValue(), 20.0, 1e-4);
}

TEST(StagedConstraints, DesignIncompleteWhileConstraintsStaged) {
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = true});
  instantiate(stagedScenario(), mgr);
  // Even if we bound everything directly, completion requires the staged
  // constraint to have been generated.
  mgr.network().bind(PropertyId{1}, 10.0);
  mgr.network().bind(PropertyId{2}, 20.0);
  EXPECT_FALSE(mgr.designComplete());
}

TEST(StagedConstraints, ConventionalFlowStaleOnlyOnceGenerated) {
  DesignProcessManager mgr(DesignProcessManager::Options{.adpm = false});
  instantiate(stagedScenario(), mgr);
  // The staged model is not stale (it does not exist yet); the budget is.
  EXPECT_TRUE(mgr.isStale(ConstraintId{0}));
  EXPECT_FALSE(mgr.isStale(ConstraintId{1}));

  Operation decompose;
  decompose.kind = OperatorKind::Decomposition;
  decompose.problem = ProblemId{0};
  decompose.designer = "lead";
  mgr.execute(decompose);
  EXPECT_TRUE(mgr.isStale(ConstraintId{1}));  // generated, never verified
}

TEST(StagedConstraints, FullSimulationCompletesWithGeneration) {
  for (const bool adpm : {false, true}) {
    DesignProcessManager mgr(
        DesignProcessManager::Options{.adpm = adpm});
    instantiate(stagedScenario(), mgr);
    mgr.bootstrap();

    // Drive by hand: decompose, bind x and y consistently, verify.
    Operation decompose;
    decompose.kind = OperatorKind::Decomposition;
    decompose.problem = ProblemId{0};
    decompose.designer = "lead";
    mgr.execute(decompose);

    Operation bind;
    bind.kind = OperatorKind::Synthesis;
    bind.problem = ProblemId{1};
    bind.designer = "dana";
    bind.assignments.emplace_back(PropertyId{1}, 10.0);
    bind.assignments.emplace_back(PropertyId{2}, 20.0);
    mgr.execute(bind);

    if (!adpm) {
      Operation verifyChild;
      verifyChild.kind = OperatorKind::Verification;
      verifyChild.problem = ProblemId{1};
      verifyChild.designer = "dana";
      mgr.execute(verifyChild);
      Operation verifyTop;
      verifyTop.kind = OperatorKind::Verification;
      verifyTop.problem = ProblemId{0};
      verifyTop.designer = "lead";
      mgr.execute(verifyTop);
    }
    EXPECT_TRUE(mgr.designComplete()) << "adpm=" << adpm;
  }
}

}  // namespace
}  // namespace adpm::dpm
