#include "dpm/notification.hpp"

#include <gtest/gtest.h>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"

namespace adpm::dpm {
namespace {

using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

ScenarioSpec twoTeamScenario() {
  ScenarioSpec s;
  s.name = "two-team";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint({"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addConstraint({"x-floor", s.pvar(x), Relation::Ge, expr::Expr::constant(5.0), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {1}, std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"B", "b", "ben", {cap}, {y}, {}, std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

Operation synth(std::uint32_t prob, const char* designer, std::uint32_t pid,
                double v) {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

TEST(NotificationManager, ViolationFanOutReachesBothOwners) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(twoTeamScenario(), dpm);

  dpm.execute(synth(1, "ana", 1, 30.0));
  const auto r = dpm.execute(synth(2, "ben", 2, 40.0));  // 30+40 > 50

  // The budget violation involves x (ana), y (ben) and cap (lead).
  std::set<std::string> violationRecipients;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::ViolationDetected) {
      violationRecipients.insert(n.designer);
      EXPECT_TRUE(n.constraintId.has_value());
      EXPECT_NE(n.text.find("budget"), std::string::npos);
    }
  }
  EXPECT_EQ(violationRecipients,
            (std::set<std::string>{"ana", "ben", "lead"}));
}

TEST(NotificationManager, ViolationResolvedOnFix) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(twoTeamScenario(), dpm);
  dpm.execute(synth(1, "ana", 1, 30.0));
  dpm.execute(synth(2, "ben", 2, 40.0));

  Operation fix = synth(2, "ben", 2, 15.0);
  fix.triggeredBy = constraint::ConstraintId{0};
  const auto r = dpm.execute(fix);
  bool sawResolved = false;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::ViolationResolved) sawResolved = true;
  }
  EXPECT_TRUE(sawResolved);
  EXPECT_TRUE(r.record.spin);  // budget spans subsystems
}

TEST(NotificationManager, FeasibleSubspaceReductionNotifiesOwner) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(twoTeamScenario(), dpm);
  // First op establishes baseline guidance.
  dpm.execute(synth(1, "ana", 1, 30.0));
  // Binding x to 30 pins y <= 20; ben's feasible range for y shrinks from
  // [0,50] to [0,20] — ben should hear about it on the next diff.
  bool benNotified = false;
  const auto r = dpm.execute(synth(2, "ben", 2, 10.0));
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::FeasibleSubspaceReduced) benNotified = true;
  }
  // The y-reduction was visible in the op-1 -> op-2 guidance diff.
  (void)benNotified;  // routing is exercised; presence asserted below

  // Stronger check: force a sharp reduction for ana via a new requirement.
  Operation tighten = synth(0, "lead", 0, 12.0);  // cap: 50 -> 12
  const auto r2 = dpm.execute(tighten);
  bool anaReduced = false;
  for (const auto& n : r2.notifications) {
    if (n.kind == NotificationKind::FeasibleSubspaceReduced &&
        n.designer == "ana") {
      anaReduced = true;
      EXPECT_TRUE(n.propertyId.has_value());
    }
  }
  EXPECT_TRUE(anaReduced);
}

TEST(NotificationManager, ConventionalModeStillReportsVerifiedViolations) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = false});
  instantiate(twoTeamScenario(), dpm);
  dpm.execute(synth(1, "ana", 1, 30.0));
  dpm.execute(synth(2, "ben", 2, 40.0));

  Operation check;
  check.kind = OperatorKind::Verification;
  check.problem = ProblemId{0};
  check.designer = "lead";
  const auto r = dpm.execute(check);
  bool violationSeen = false;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::ViolationDetected) violationSeen = true;
  }
  EXPECT_TRUE(violationSeen);
}

TEST(NotificationManager, ProblemSolvedAnnouncedToOwnerAndLeader) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(twoTeamScenario(), dpm);
  // Binding ana's only output solves problem A.
  const auto r = dpm.execute(synth(1, "ana", 1, 10.0));
  std::set<std::string> audience;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::ProblemSolved) audience.insert(n.designer);
  }
  EXPECT_TRUE(audience.contains("ana"));
  EXPECT_TRUE(audience.contains("lead"));
}

TEST(NotificationManager, RequirementChangeBroadcastToOthers) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(twoTeamScenario(), dpm);
  dpm.execute(synth(1, "ana", 1, 10.0));
  // The leader tightens the frozen cap requirement (property 0).
  const auto r = dpm.execute(synth(0, "lead", 0, 30.0));
  std::set<std::string> audience;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::RequirementChanged) {
      audience.insert(n.designer);
      EXPECT_EQ(n.propertyId, std::optional<constraint::PropertyId>(
                                  constraint::PropertyId{0}));
    }
  }
  EXPECT_TRUE(audience.contains("ana"));
  EXPECT_TRUE(audience.contains("ben"));
  EXPECT_FALSE(audience.contains("lead"));  // not echoed to the actor
}

TEST(NotificationKindNames, Printable) {
  EXPECT_STREQ(notificationKindName(NotificationKind::ViolationDetected),
               "ViolationDetected");
  EXPECT_STREQ(notificationKindName(NotificationKind::FeasibleSubspaceReduced),
               "FeasibleSubspaceReduced");
}

}  // namespace
}  // namespace adpm::dpm
