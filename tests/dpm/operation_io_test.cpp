#include "dpm/operation_io.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;

Operation fullOperation() {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{3};
  op.designer = "ana";
  op.assignments.emplace_back(PropertyId{1}, 30.5);
  op.assignments.emplace_back(PropertyId{7}, 1.0 / 3.0);
  op.checks = {ConstraintId{0}, ConstraintId{4}};
  op.triggeredBy = ConstraintId{2};
  op.rationale = "alpha=2, repairing \"budget\"";
  return op;
}

void expectEqual(const Operation& a, const Operation& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.problem.value, b.problem.value);
  EXPECT_EQ(a.designer, b.designer);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].first.value, b.assignments[i].first.value);
    // Bit-identical, not approximately equal: the journal must replay the
    // exact double the live run bound.
    EXPECT_EQ(a.assignments[i].second, b.assignments[i].second);
  }
  ASSERT_EQ(a.checks.size(), b.checks.size());
  for (std::size_t i = 0; i < a.checks.size(); ++i) {
    EXPECT_EQ(a.checks[i].value, b.checks[i].value);
  }
  EXPECT_EQ(a.triggeredBy.has_value(), b.triggeredBy.has_value());
  if (a.triggeredBy && b.triggeredBy) {
    EXPECT_EQ(a.triggeredBy->value, b.triggeredBy->value);
  }
  EXPECT_EQ(a.rationale, b.rationale);
}

TEST(OperationIo, FullOperationRoundTrips) {
  const Operation op = fullOperation();
  expectEqual(operationFromJsonLine(operationToJsonLine(op)), op);
}

TEST(OperationIo, MinimalOperationOmitsEmptyFields) {
  Operation op;
  op.kind = OperatorKind::Verification;
  op.problem = ProblemId{0};
  op.designer = "lead";
  const std::string line = operationToJsonLine(op);
  EXPECT_EQ(line, R"({"kind":"Verification","problem":0,"designer":"lead"})");
  expectEqual(operationFromJsonLine(line), op);
}

TEST(OperationIo, AllKindsRoundTrip) {
  for (const OperatorKind kind :
       {OperatorKind::Synthesis, OperatorKind::Verification,
        OperatorKind::Decomposition}) {
    Operation op;
    op.kind = kind;
    op.designer = "d";
    expectEqual(operationFromJsonLine(operationToJsonLine(op)), op);
  }
}

TEST(OperationIo, EncodingIsStableAcrossRoundTrips) {
  const std::string line = operationToJsonLine(fullOperation());
  EXPECT_EQ(operationToJsonLine(operationFromJsonLine(line)), line);
}

TEST(OperationIo, RejectsMalformedObjects) {
  EXPECT_THROW(operationFromJsonLine("{}"), adpm::InvalidArgumentError);
  EXPECT_THROW(operationFromJsonLine(R"({"kind":"Wizardry","problem":0,"designer":"x"})"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(operationFromJsonLine(R"({"kind":"Synthesis","problem":-1,"designer":"x"})"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(operationFromJsonLine(R"({"kind":"Synthesis","problem":1.5,"designer":"x"})"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(operationFromJsonLine(R"({"kind":"Synthesis","problem":0,"designer":"x","assign":[[1]]})"),
               adpm::InvalidArgumentError);
  EXPECT_THROW(operationFromJsonLine("not json at all"), adpm::Error);
}

}  // namespace
}  // namespace adpm::dpm
