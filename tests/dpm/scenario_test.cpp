#include "dpm/scenario.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using constraint::Relation;
using interval::Domain;

// A miniature two-subsystem receiver used across the dpm tests: a front-end
// and a filter designed concurrently under shared power and gain budgets.
ScenarioSpec miniReceiver() {
  ScenarioSpec s;
  s.name = "mini-receiver";
  s.addObject("system");
  s.addObject("frontend", "system");
  s.addObject("filter", "system");

  const auto pm = s.addProperty("P_M", "system", Domain::continuous(100, 300), "mW");
  const auto gmin = s.addProperty("G_min", "system", Domain::continuous(20, 100));
  const auto pf = s.addProperty("P_f", "frontend", Domain::continuous(0, 200), "mW");
  const auto gf = s.addProperty("G_f", "frontend", Domain::continuous(1, 20));
  const auto ps = s.addProperty("P_s", "filter", Domain::continuous(0, 200), "mW");
  const auto gs = s.addProperty("G_s", "filter", Domain::continuous(1, 20));

  s.addConstraint({"power-budget", s.pvar(pf) + s.pvar(ps), Relation::Le,
                   s.pvar(pm),
                   {{pf, false}, {ps, false}, {pm, true}}});
  s.addConstraint({"gain-budget", s.pvar(gf) * s.pvar(gs), Relation::Ge,
                   s.pvar(gmin),
                   {{gf, true}, {gs, true}, {gmin, false}}});
  s.addConstraint({"fe-power-model", s.pvar(pf), Relation::Eq,
                   10.0 * s.pvar(gf), {}});
  s.addConstraint({"flt-power-model", s.pvar(ps), Relation::Eq,
                   5.0 * s.pvar(gs), {}});

  const auto top = s.addProblem({"Top", "system", "leader",
                                 {}, {pm, gmin},
                                 {*s.constraintIndex("power-budget"),
                                  *s.constraintIndex("gain-budget")},
                                 std::nullopt, {}, true});
  s.addProblem({"FE", "frontend", "alice",
                {pm}, {pf, gf},
                {*s.constraintIndex("fe-power-model")},
                top, {}, true});
  s.addProblem({"FLT", "filter", "bob",
                {pm}, {ps, gs},
                {*s.constraintIndex("flt-power-model")},
                top, {}, true});

  s.require(pm, 150.0);
  s.require(gmin, 30.0);
  return s;
}

TEST(ScenarioSpec, ValidSpecPassesValidation) {
  const ScenarioSpec s = miniReceiver();
  EXPECT_TRUE(s.validate().empty());
}

TEST(ScenarioSpec, LookupsByName) {
  const ScenarioSpec s = miniReceiver();
  EXPECT_EQ(s.propertyIndex("P_f"), 2u);
  EXPECT_EQ(s.constraintIndex("gain-budget"), 1u);
  EXPECT_EQ(s.problemIndex("FLT"), 2u);
  EXPECT_FALSE(s.propertyIndex("nope").has_value());
  EXPECT_FALSE(s.constraintIndex("nope").has_value());
  EXPECT_FALSE(s.problemIndex("nope").has_value());
}

TEST(ScenarioSpec, PvarNamesVariables) {
  const ScenarioSpec s = miniReceiver();
  EXPECT_EQ(s.pvar(0).str(), "P_M");
  EXPECT_THROW(s.pvar(99), adpm::InvalidArgumentError);
}

TEST(ScenarioSpec, ValidationCatchesDanglingReferences) {
  ScenarioSpec s;
  s.name = "broken";
  s.addObject("o");
  s.addObject("o");  // duplicate
  s.addProperty("x", "ghost", Domain::continuous(0, 1));
  s.addProperty("x", "o", Domain::continuous(0, 1));  // duplicate name
  s.addProperty("empty", "o", Domain::continuous(1, 0));  // empty range
  s.addConstraint({"c", expr::Expr::variable(42), constraint::Relation::Le,
                   expr::Expr::constant(0.0), {{9, true}}});
  s.addProblem({"p", "ghost", "", {7}, {8}, {5}, std::nullopt, {4}, true});
  s.require(99, 0.0);

  const auto errors = s.validate();
  EXPECT_GE(errors.size(), 9u);
}

TEST(Instantiate, BuildsManagerWithDenseIds) {
  const ScenarioSpec s = miniReceiver();
  DesignProcessManager dpm;
  instantiate(s, dpm);

  EXPECT_EQ(dpm.network().propertyCount(), 6u);
  EXPECT_EQ(dpm.network().constraintCount(), 4u);
  EXPECT_EQ(dpm.problemIds().size(), 3u);
  EXPECT_EQ(dpm.network().property(constraint::PropertyId{0}).name, "P_M");
  EXPECT_EQ(dpm.problem(ProblemId{0}).name, "Top");
  EXPECT_EQ(dpm.problem(ProblemId{1}).owner, "alice");

  // Requirements were bound at initialisation.
  EXPECT_TRUE(dpm.network().property(constraint::PropertyId{0}).bound());
  EXPECT_EQ(*dpm.network().property(constraint::PropertyId{0}).value, 150.0);

  // Declared monotonicity survived instantiation.
  const auto& gain = dpm.network().constraint(constraint::ConstraintId{1});
  EXPECT_EQ(gain.declaredHelpDirection(constraint::PropertyId{3}), 1);
  EXPECT_EQ(gain.declaredHelpDirection(constraint::PropertyId{1}), -1);
}

TEST(Instantiate, RejectsNonEmptyManager) {
  const ScenarioSpec s = miniReceiver();
  DesignProcessManager dpm;
  instantiate(s, dpm);
  EXPECT_THROW(instantiate(s, dpm), adpm::InvalidArgumentError);
}

TEST(Instantiate, RejectsInvalidSpec) {
  ScenarioSpec s;
  s.name = "broken";
  s.addProperty("x", "ghost", Domain::continuous(0, 1));
  DesignProcessManager dpm;
  EXPECT_THROW(instantiate(s, dpm), adpm::InvalidArgumentError);
}

TEST(Instantiate, ObjectHierarchyPreserved) {
  const ScenarioSpec s = miniReceiver();
  DesignProcessManager dpm;
  instantiate(s, dpm);
  const DesignObject* fe = dpm.object("frontend");
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fe->parent, "system");
  EXPECT_EQ(fe->properties.size(), 2u);
  EXPECT_EQ(dpm.object("nope"), nullptr);
}

TEST(Instantiate, DesignersEnumerated) {
  const ScenarioSpec s = miniReceiver();
  DesignProcessManager dpm;
  instantiate(s, dpm);
  const auto names = dpm.designers();
  EXPECT_EQ(names.size(), 3u);  // leader, alice, bob
}

}  // namespace
}  // namespace adpm::dpm
