#include "dpm/manager.hpp"

#include <gtest/gtest.h>

#include "dpm/scenario.hpp"
#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using constraint::Status;
using interval::Domain;

// Property/constraint/problem indices of the mini receiver (see
// scenario_test.cpp for the full description).
constexpr std::uint32_t kPm = 0, kGmin = 1, kPf = 2, kGf = 3, kPs = 4, kGs = 5;
constexpr std::uint32_t kPower = 0, kGain = 1, kFeModel = 2, kFltModel = 3;

ScenarioSpec miniReceiver() {
  ScenarioSpec s;
  s.name = "mini-receiver";
  s.addObject("system");
  s.addObject("frontend", "system");
  s.addObject("filter", "system");
  s.addProperty("P_M", "system", Domain::continuous(100, 300), "mW");
  s.addProperty("G_min", "system", Domain::continuous(20, 100));
  s.addProperty("P_f", "frontend", Domain::continuous(0, 200), "mW");
  s.addProperty("G_f", "frontend", Domain::continuous(1, 20));
  s.addProperty("P_s", "filter", Domain::continuous(0, 200), "mW");
  s.addProperty("G_s", "filter", Domain::continuous(1, 20));
  s.addConstraint({"power-budget", s.pvar(kPf) + s.pvar(kPs), Relation::Le,
                   s.pvar(kPm), {}});
  s.addConstraint({"gain-budget", s.pvar(kGf) * s.pvar(kGs), Relation::Ge,
                   s.pvar(kGmin), {}});
  s.addConstraint({"fe-power-model", s.pvar(kPf), Relation::Eq,
                   10.0 * s.pvar(kGf), {}});
  s.addConstraint({"flt-power-model", s.pvar(kPs), Relation::Eq,
                   5.0 * s.pvar(kGs), {}});
  s.addProblem({"Top", "system", "leader", {}, {kPm, kGmin},
                {kPower, kGain}, std::nullopt, {}, true});
  s.addProblem({"FE", "frontend", "alice", {kPm}, {kPf, kGf},
                {kFeModel}, std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"FLT", "filter", "bob", {kPm}, {kPs, kGs},
                {kFltModel}, std::optional<std::size_t>{0}, {}, true});
  s.require(kPm, 150.0);
  s.require(kGmin, 30.0);
  return s;
}

Operation synth(ProblemId prob, const char* designer,
                std::initializer_list<std::pair<std::uint32_t, double>> a) {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = prob;
  op.designer = designer;
  for (const auto& [pid, v] : a) op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

Operation verify(ProblemId prob, const char* designer) {
  Operation op;
  op.kind = OperatorKind::Verification;
  op.problem = prob;
  op.designer = designer;
  return op;
}

class AdpmManagerTest : public ::testing::Test {
 protected:
  AdpmManagerTest() : dpm_(DesignProcessManager::Options{.adpm = true}) {
    instantiate(miniReceiver(), dpm_);
  }
  DesignProcessManager dpm_;
};

class ConventionalManagerTest : public ::testing::Test {
 protected:
  ConventionalManagerTest()
      : dpm_(DesignProcessManager::Options{.adpm = false}) {
    instantiate(miniReceiver(), dpm_);
  }
  DesignProcessManager dpm_;
};

TEST_F(AdpmManagerTest, SynthesisTriggersPropagationAndGuidance) {
  EXPECT_EQ(dpm_.latestGuidance(), nullptr);  // no operation yet
  const auto r = dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 10.0}}));

  EXPECT_EQ(r.record.stage, 1u);
  EXPECT_GT(r.record.evaluations, 0u);  // propagation ran
  ASSERT_NE(dpm_.latestGuidance(), nullptr);

  // fe-power-model pins P_f = 100.
  const auto& g = dpm_.latestGuidance()->of(PropertyId{kPf});
  EXPECT_NEAR(g.feasible.minValue(), 100.0, 1e-3);
  EXPECT_NEAR(g.feasible.maxValue(), 100.0, 1e-3);

  // gain-budget: G_s >= 30/10 = 3.
  const auto& gs = dpm_.latestGuidance()->of(PropertyId{kGs});
  EXPECT_NEAR(gs.feasible.minValue(), 3.0, 1e-4);
}

TEST_F(AdpmManagerTest, ViolationDetectedImmediately) {
  // G_f = 2 keeps the gain budget reachable (2 * 20 = 40 >= 30); binding
  // G_s = 5 then drops the product to 10 < 30, violating immediately.
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 2.0}}));
  EXPECT_EQ(dpm_.knownViolationCount(), 0u);  // G_s can still reach 15
  const auto r = dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 5.0}}));
  ASSERT_EQ(r.record.violationsFound.size(), 1u);
  EXPECT_EQ(r.record.violationsFound[0].value, kGain);
  EXPECT_EQ(dpm_.knownViolationCount(), 1u);
}

TEST_F(AdpmManagerTest, SpinClassification) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 1.0}}));
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 20.0}}));

  // Repair triggered by the cross-subsystem gain violation: a spin.
  Operation repair = synth(ProblemId{1}, "alice", {{kGf, 5.0}});
  repair.triggeredBy = ConstraintId{kGain};
  const auto r = dpm_.execute(repair);
  EXPECT_TRUE(r.record.spin);
  EXPECT_EQ(dpm_.knownViolationCount(), 0u);  // 5 * 20 = 100 >= 30

  // Repair triggered by an internal model violation: not a spin.
  Operation internal = synth(ProblemId{1}, "alice", {{kPf, 50.0}});
  internal.triggeredBy = ConstraintId{kFeModel};
  EXPECT_FALSE(dpm_.execute(internal).record.spin);
}

TEST_F(AdpmManagerTest, CompletesWhenEverythingBoundAndClean) {
  EXPECT_FALSE(dpm_.designComplete());
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 6.0}, {kPf, 60.0}}));
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 6.0}, {kPs, 30.0}}));
  // 60+30 <= 150, 36 >= 30, models hold (60 = 10*6, 30 = 5*6).
  EXPECT_TRUE(dpm_.designComplete());
  EXPECT_EQ(dpm_.problem(ProblemId{0}).status, ProblemStatus::Solved);
  EXPECT_EQ(dpm_.problem(ProblemId{1}).status, ProblemStatus::Solved);
}

TEST_F(AdpmManagerTest, SolvedProblemReopensOnConflict) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 6.0}, {kPf, 60.0}}));
  EXPECT_EQ(dpm_.problem(ProblemId{1}).status, ProblemStatus::Solved);
  // Bob binds values that break the power budget: 60 + 120 > 150; the FE
  // problem stays solved (its own T_i is clean) but Top cannot solve.
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 24.0}, {kPs, 120.0}}));
  EXPECT_GT(dpm_.knownViolationCount(), 0u);
  EXPECT_FALSE(dpm_.designComplete());
  EXPECT_NE(dpm_.problem(ProblemId{0}).status, ProblemStatus::Solved);
}

TEST_F(ConventionalManagerTest, NoPropagationNoGuidance) {
  const auto r = dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 1.0}}));
  EXPECT_EQ(dpm_.latestGuidance(), nullptr);
  EXPECT_EQ(r.record.evaluations, 0u);  // synthesis costs no tool run
  // Even a conflicting pair of bindings goes unnoticed without verification.
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 20.0}}));
  EXPECT_EQ(dpm_.knownViolationCount(), 0u);
}

TEST_F(ConventionalManagerTest, VerificationEvaluatesOnlyBoundConstraints) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 4.0}}));
  // fe-power-model needs P_f too; with P_f unbound the tool cannot run.
  const auto r = dpm_.execute(verify(ProblemId{1}, "alice"));
  EXPECT_EQ(r.record.evaluations, 0u);

  dpm_.execute(synth(ProblemId{1}, "alice", {{kPf, 40.0}}));
  const auto r2 = dpm_.execute(verify(ProblemId{1}, "alice"));
  EXPECT_EQ(r2.record.evaluations, 1u);
  EXPECT_EQ(dpm_.knownStatuses()[kFeModel], Status::Satisfied);
}

TEST_F(ConventionalManagerTest, StalenessTracksRebinding) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 4.0}, {kPf, 40.0}}));
  dpm_.execute(verify(ProblemId{1}, "alice"));
  EXPECT_FALSE(dpm_.isStale(ConstraintId{kFeModel}));

  // Rebinding G_f invalidates the verified verdict.
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 5.0}}));
  EXPECT_TRUE(dpm_.isStale(ConstraintId{kFeModel}));
  EXPECT_EQ(dpm_.knownStatuses()[kFeModel], Status::Consistent);
}

TEST_F(ConventionalManagerTest, LateConflictDiscoveredAtIntegration) {
  // Both subsystems complete and locally verified, but the power budget is
  // blown: the conflict emerges only at system-level verification.
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 9.0}, {kPf, 90.0}}));
  dpm_.execute(verify(ProblemId{1}, "alice"));
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 16.0}, {kPs, 80.0}}));
  dpm_.execute(verify(ProblemId{2}, "bob"));
  EXPECT_EQ(dpm_.knownViolationCount(), 0u);
  EXPECT_EQ(dpm_.problem(ProblemId{1}).status, ProblemStatus::Solved);
  EXPECT_EQ(dpm_.problem(ProblemId{2}).status, ProblemStatus::Solved);
  EXPECT_FALSE(dpm_.designComplete());  // cross constraints still stale

  const auto r = dpm_.execute(verify(ProblemId{0}, "leader"));
  EXPECT_EQ(r.record.evaluations, 2u);  // power-budget + gain-budget
  ASSERT_EQ(r.record.violationsFound.size(), 1u);
  EXPECT_EQ(r.record.violationsFound[0].value, kPower);  // 90+80 > 150
}

TEST_F(ConventionalManagerTest, CompletionRequiresFreshVerification) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 6.0}, {kPf, 60.0}}));
  dpm_.execute(verify(ProblemId{1}, "alice"));
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 6.0}, {kPs, 30.0}}));
  dpm_.execute(verify(ProblemId{2}, "bob"));
  EXPECT_FALSE(dpm_.designComplete());  // budgets not yet verified
  dpm_.execute(verify(ProblemId{0}, "leader"));
  EXPECT_TRUE(dpm_.designComplete());
}

TEST_F(AdpmManagerTest, HistoryRecordsOperations) {
  dpm_.execute(synth(ProblemId{1}, "alice", {{kGf, 6.0}}));
  dpm_.execute(synth(ProblemId{2}, "bob", {{kGs, 6.0}}));
  EXPECT_EQ(dpm_.stage(), 2u);
  ASSERT_EQ(dpm_.history().size(), 2u);
  EXPECT_EQ(dpm_.history()[0].stage, 1u);
  EXPECT_EQ(dpm_.history()[1].op.designer, "bob");
}

TEST_F(AdpmManagerTest, CrossSubsystemDetection) {
  EXPECT_TRUE(dpm_.crossSubsystem(ConstraintId{kPower}));
  EXPECT_TRUE(dpm_.crossSubsystem(ConstraintId{kGain}));
  EXPECT_FALSE(dpm_.crossSubsystem(ConstraintId{kFeModel}));
}

TEST_F(AdpmManagerTest, OwnershipResolution) {
  EXPECT_EQ(dpm_.ownerOfObject("frontend"), "alice");
  EXPECT_EQ(dpm_.ownerOfProperty(PropertyId{kPf}), "alice");
  EXPECT_EQ(dpm_.ownerOfProperty(PropertyId{kPm}), "leader");
  EXPECT_EQ(dpm_.ownerOfObject("nope"), "");
}

TEST_F(AdpmManagerTest, FailedAssignmentTabu) {
  dpm_.recordFailedAssignment(PropertyId{kGf}, 2.0);
  EXPECT_TRUE(dpm_.isFailedAssignment(PropertyId{kGf}, 2.0, 1e-9));
  EXPECT_TRUE(dpm_.isFailedAssignment(PropertyId{kGf}, 2.05, 0.1));
  EXPECT_FALSE(dpm_.isFailedAssignment(PropertyId{kGf}, 3.0, 0.1));
  EXPECT_FALSE(dpm_.isFailedAssignment(PropertyId{kGs}, 2.0, 0.1));
}

TEST_F(AdpmManagerTest, ExecuteRejectsUnknownProblem) {
  EXPECT_THROW(dpm_.execute(synth(ProblemId{9}, "x", {})),
               adpm::InvalidArgumentError);
}

TEST(ManagerBuild, PredecessorOrderingCreatesWaiting) {
  DesignProcessManager dpm;
  dpm.addObject("o");
  const auto x = dpm.addProperty({"x", "o", Domain::continuous(0, 1), "", {}});
  const auto y = dpm.addProperty({"y", "o", Domain::continuous(0, 1), "", {}});
  const auto first = dpm.addProblem({"first", "o", "d", {}, {x}, {},
                                     std::nullopt, {}, true});
  const auto second = dpm.addProblem({"second", "o", "d", {}, {y}, {},
                                      std::nullopt, {first}, true});
  EXPECT_EQ(dpm.problem(second).status, ProblemStatus::Waiting);

  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = first;
  op.designer = "d";
  op.assignments.emplace_back(x, 0.5);
  dpm.execute(op);
  EXPECT_EQ(dpm.problem(first).status, ProblemStatus::Solved);
  EXPECT_EQ(dpm.problem(second).status, ProblemStatus::Ready);
}

TEST(ManagerBuild, DecompositionReleasesChildren) {
  DesignProcessManager dpm;
  dpm.addObject("o");
  const auto x = dpm.addProperty({"x", "o", Domain::continuous(0, 1), "", {}});
  const auto parent = dpm.addProblem({"parent", "o", "d", {}, {x}, {},
                                      std::nullopt, {}, true});
  const auto child = dpm.addProblem({"child", "o", "d", {}, {x}, {},
                                     parent, {}, false});
  EXPECT_EQ(dpm.problem(child).status, ProblemStatus::Unassigned);

  Operation op;
  op.kind = OperatorKind::Decomposition;
  op.problem = parent;
  op.designer = "d";
  dpm.execute(op);
  EXPECT_EQ(dpm.problem(child).status, ProblemStatus::Ready);
  EXPECT_EQ(dpm.problem(parent).status, ProblemStatus::InProgress);
}

}  // namespace
}  // namespace adpm::dpm
