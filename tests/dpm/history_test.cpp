#include "dpm/history.hpp"

#include <gtest/gtest.h>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

ScenarioSpec tinyScenario() {
  ScenarioSpec s;
  s.name = "tiny";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint({"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {}, std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"B", "b", "ben", {cap}, {y}, {}, std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

Operation synth(std::uint32_t prob, const char* designer, std::uint32_t pid,
                double v) {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() : dpm_(DesignProcessManager::Options{.adpm = true}) {
    instantiate(tinyScenario(), dpm_);
    dpm_.bootstrap();
  }
  DesignProcessManager dpm_;
};

TEST_F(HistoryTest, JournalsAssignmentsWithPreviousValues) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  dpm_.execute(synth(1, "ana", 1, 35.0));

  const DesignHistory& h = dpm_.designHistory();
  ASSERT_EQ(h.stages(), 2u);
  const HistoryEntry& first = h.entry(1);
  ASSERT_EQ(first.assignments.size(), 1u);
  EXPECT_EQ(first.assignments[0].property, PropertyId{1});
  EXPECT_FALSE(first.assignments[0].before.has_value());
  EXPECT_EQ(first.assignments[0].after, 30.0);

  const HistoryEntry& second = h.entry(2);
  ASSERT_EQ(second.assignments.size(), 1u);
  EXPECT_EQ(second.assignments[0].before, std::optional<double>(30.0));
  EXPECT_EQ(second.assignments[0].after, 35.0);
}

TEST_F(HistoryTest, ValueAtReconstructsAnyStage) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  dpm_.execute(synth(2, "ben", 2, 10.0));
  dpm_.execute(synth(1, "ana", 1, 20.0));

  const DesignHistory& h = dpm_.designHistory();
  EXPECT_EQ(h.valueAt(PropertyId{1}, 0), std::nullopt);
  EXPECT_EQ(h.valueAt(PropertyId{1}, 1), std::optional<double>(30.0));
  EXPECT_EQ(h.valueAt(PropertyId{1}, 2), std::optional<double>(30.0));
  EXPECT_EQ(h.valueAt(PropertyId{1}, 3), std::optional<double>(20.0));
  // Initial requirement bindings count as stage 0.
  EXPECT_EQ(h.valueAt(PropertyId{0}, 0), std::optional<double>(50.0));
}

TEST_F(HistoryTest, TracksAssignmentStagesAndCounts) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  dpm_.execute(synth(2, "ben", 2, 10.0));
  dpm_.execute(synth(1, "ana", 1, 20.0));

  const DesignHistory& h = dpm_.designHistory();
  EXPECT_EQ(h.assignmentStages(PropertyId{1}),
            (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(h.assignmentCount(PropertyId{1}), 2u);
  EXPECT_EQ(h.assignmentCount(PropertyId{2}), 1u);
  EXPECT_EQ(h.assignmentCount(PropertyId{0}), 0u);  // requirement: stage 0
}

TEST_F(HistoryTest, RecordsStatusTransitions) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  dpm_.execute(synth(2, "ben", 2, 40.0));  // 30 + 40 > 50: budget violated

  const DesignHistory& h = dpm_.designHistory();
  EXPECT_EQ(h.firstViolation(ConstraintId{0}), std::optional<std::size_t>(2));
  EXPECT_EQ(h.violationsAfter(1), 0u);
  EXPECT_EQ(h.violationsAfter(2), 1u);

  Operation fix = synth(2, "ben", 2, 15.0);
  fix.triggeredBy = ConstraintId{0};
  dpm_.execute(fix);
  EXPECT_EQ(h.violationsAfter(3), 0u);
  // The resolution shows as a status change back from Violated.
  bool sawResolution = false;
  for (const StatusDelta& d : h.entry(3).statusChanges) {
    if (d.before == constraint::Status::Violated &&
        d.after != constraint::Status::Violated) {
      sawResolution = true;
    }
  }
  EXPECT_TRUE(sawResolution);
}

TEST_F(HistoryTest, SpinStagesAndPerDesignerQueries) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  dpm_.execute(synth(2, "ben", 2, 40.0));
  Operation fix = synth(2, "ben", 2, 15.0);
  fix.triggeredBy = ConstraintId{0};  // budget spans subsystems -> spin
  dpm_.execute(fix);

  const DesignHistory& h = dpm_.designHistory();
  EXPECT_EQ(h.spinStages(), (std::vector<std::size_t>{3}));
  EXPECT_EQ(h.stagesBy("ana"), (std::vector<std::size_t>{1}));
  EXPECT_EQ(h.stagesBy("ben"), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(h.stagesBy("nobody").empty());
}

TEST_F(HistoryTest, RecordsProblemTransitions) {
  dpm_.execute(synth(1, "ana", 1, 30.0));
  // Problem A solved by its only output binding.
  const DesignHistory& h = dpm_.designHistory();
  bool sawSolved = false;
  for (const ProblemDelta& d : h.entry(1).problemChanges) {
    if (d.problem == ProblemId{1} && d.after == ProblemStatus::Solved) {
      sawSolved = true;
    }
  }
  EXPECT_TRUE(sawSolved);
}

TEST_F(HistoryTest, EntryValidatesStage) {
  EXPECT_TRUE(dpm_.designHistory().empty());
  EXPECT_THROW(dpm_.designHistory().entry(0), adpm::InvalidArgumentError);
  EXPECT_THROW(dpm_.designHistory().entry(1), adpm::InvalidArgumentError);
  dpm_.execute(synth(1, "ana", 1, 30.0));
  EXPECT_NO_THROW(dpm_.designHistory().entry(1));
  EXPECT_THROW(dpm_.designHistory().entry(2), adpm::InvalidArgumentError);
}

}  // namespace
}  // namespace adpm::dpm
