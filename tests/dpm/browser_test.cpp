#include "dpm/browser.hpp"

#include <gtest/gtest.h>

#include "dpm/scenario.hpp"

namespace adpm::dpm {
namespace {

using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

// Replicates the shape of the paper's Fig. 2-4 walkthrough: an LNA+Mixer
// object whose properties appear in gain / impedance / power constraints.
ScenarioSpec lnaScenario() {
  ScenarioSpec s;
  s.name = "lna";
  s.addObject("system");
  s.addObject("LNA+Mixer", "system");
  const auto w = s.addProperty("Diff-pair-W", "LNA+Mixer",
                               Domain::continuous(1.0, 8.0), "um",
                               {"Transistor", "Geometry"});
  const auto l = s.addProperty("Freq-ind", "LNA+Mixer",
                               Domain::continuous(0.05, 0.5), "uH",
                               {"Transistor", "Geometry"});
  const auto g = s.addProperty("LNA-gain", "LNA+Mixer",
                               Domain::continuous(0, 500), "", {"Geometry"});
  s.addConstraint({"LNAGain-C10", s.pvar(g), Relation::Eq,
                   30.0 * s.pvar(w) * s.pvar(l), {}});
  s.addConstraint({"TotalGain-C13", s.pvar(g), Relation::Ge,
                   expr::Expr::constant(48.0), {}});
  s.addConstraint({"LNA-Zin-C9", 120.0 / s.pvar(w), Relation::Le,
                   expr::Expr::constant(40.0), {}});
  s.addProblem({"LNA", "LNA+Mixer", "circuit-designer", {}, {w, l, g},
                {0, 1, 2}, std::nullopt, {}, true});
  return s;
}

Operation synth(const char* designer, std::uint32_t pid, double v) {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{0};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

TEST(ObjectBrowser, ShowsLevelsAndConsistentValues) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  dpm.execute(synth("circuit-designer", 1, 0.2));  // bind Freq-ind

  const std::string view = renderObjectBrowser(dpm, "LNA+Mixer");
  EXPECT_NE(view.find("Object name: LNA+Mixer"), std::string::npos);
  EXPECT_NE(view.find("Version number:"), std::string::npos);
  EXPECT_NE(view.find("Diff-pair-W"), std::string::npos);
  EXPECT_NE(view.find("Abstraction Levels: Transistor,Geometry"),
            std::string::npos);
  EXPECT_NE(view.find("Consistent values:"), std::string::npos);
  // Propagation has pinned the feasible window of W: gain>=48 with L=0.2
  // means W >= 8.  The consistent-values text should reflect narrowing.
  EXPECT_NE(view.find("(bound: 0.2)"), std::string::npos);
}

TEST(ObjectBrowser, VersionBumpsOnSynthesis) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  EXPECT_EQ(dpm.object("LNA+Mixer")->version, "1.0.1");
  dpm.execute(synth("circuit-designer", 1, 0.2));
  EXPECT_EQ(dpm.object("LNA+Mixer")->version, "1.0.2");
  dpm.execute(synth("circuit-designer", 0, 3.5));
  EXPECT_EQ(dpm.object("LNA+Mixer")->version, "1.0.3");
  // Untouched objects keep their version.
  EXPECT_EQ(dpm.object("system")->version, "1.0.1");
}

TEST(ObjectBrowser, UnknownObjectDegradesGracefully) {
  DesignProcessManager dpm;
  const std::string view = renderObjectBrowser(dpm, "ghost");
  EXPECT_NE(view.find("unknown"), std::string::npos);
}

TEST(ConstraintBrowser, ShowsBetaAndConnectedViolations) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  // Paper Fig. 4: small W violates impedance (120/2.5 = 48 > 40) and the
  // total gain requirement.
  dpm.execute(synth("circuit-designer", 1, 0.2));
  dpm.execute(synth("circuit-designer", 0, 2.5));

  const std::string view = renderConstraintBrowser(dpm, "circuit-designer");
  EXPECT_NE(view.find("CONSTRAINTS"), std::string::npos);
  EXPECT_NE(view.find("PROPERTIES"), std::string::npos);
  EXPECT_NE(view.find("Violated"), std::string::npos);
  EXPECT_NE(view.find("P.Diff-pair-W"), std::string::npos);
  EXPECT_NE(view.find("Connected violations"), std::string::npos);
  // Diff-pair-W appears in 3 constraints (its beta).
  EXPECT_NE(view.find("3"), std::string::npos);
}

TEST(ConstraintBrowser, ShowsRequiredWindowsForViolations) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  dpm.execute(synth("circuit-designer", 1, 0.2));
  dpm.execute(synth("circuit-designer", 0, 2.5));  // impedance violated

  const std::string view = renderConstraintBrowser(dpm, "circuit-designer");
  EXPECT_NE(view.find("REQUIRED WINDOWS"), std::string::npos);
  EXPECT_NE(view.find("required by LNA-Zin-C9"), std::string::npos);
  // 120/W <= 40 alone requires W >= 3 from its initial range [1, 8].
  EXPECT_NE(view.find("P.Diff-pair-W  [3, 8] required by LNA-Zin-C9"),
            std::string::npos);
}

TEST(ConstraintBrowser, NoRequiredWindowsWhenClean) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  dpm.execute(synth("circuit-designer", 1, 0.2));
  const std::string view = renderConstraintBrowser(dpm, "circuit-designer");
  EXPECT_EQ(view.find("REQUIRED WINDOWS"), std::string::npos);
}

TEST(ConstraintBrowser, ConventionalModeShowsStaleness) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = false});
  instantiate(lnaScenario(), dpm);
  dpm.execute(synth("circuit-designer", 0, 2.5));
  const std::string view = renderConstraintBrowser(dpm, "circuit-designer");
  EXPECT_NE(view.find("(stale)"), std::string::npos);
  EXPECT_NE(view.find("<No value assigned>"), std::string::npos);
}

TEST(ProblemTree, RendersHierarchyWithStatuses) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  const std::string tree = renderProblemTree(dpm);
  EXPECT_NE(tree.find("PROBLEMS"), std::string::npos);
  EXPECT_NE(tree.find("LNA"), std::string::npos);
  EXPECT_NE(tree.find("owner: circuit-designer"), std::string::npos);
  EXPECT_NE(tree.find("[Ready]"), std::string::npos);
}

TEST(ConstraintBrowser, GlobalViewIncludesEverything) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(lnaScenario(), dpm);
  dpm.execute(synth("circuit-designer", 1, 0.2));
  const std::string view = renderConstraintBrowser(dpm);
  EXPECT_NE(view.find("LNAGain-C10"), std::string::npos);
  EXPECT_NE(view.find("TotalGain-C13"), std::string::npos);
  EXPECT_NE(view.find("LNA-Zin-C9"), std::string::npos);
}

}  // namespace
}  // namespace adpm::dpm
