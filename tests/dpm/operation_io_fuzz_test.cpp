// Round-trip fuzz for the operation codec (ISSUE-6 satellite).
//
// The WAL and the wire protocol both ride on operationToJsonLine /
// operationFromJsonLine, and replay determinism depends on the encoding
// being canonical: encode(decode(encode(op))) must be byte-identical to
// encode(op) for EVERY operation, not just the handful the unit tests
// enumerate.  This test drives the codec with seeded-random operations
// (deterministic per seed — a failure reproduces exactly), and hammers the
// decoder with truncated and garbled variants of valid lines, which must
// either throw a typed adpm::Error or decode to something that re-encodes
// stably — never crash, never decode two different ways.
#include "dpm/operation_io.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::dpm {
namespace {

/// A random but structurally valid operation; every optional field appears
/// with some probability so all encode paths get exercised.
Operation randomOperation(util::Rng& rng) {
  Operation op;
  switch (rng.index(3)) {
    case 0: op.kind = OperatorKind::Synthesis; break;
    case 1: op.kind = OperatorKind::Verification; break;
    default: op.kind = OperatorKind::Decomposition; break;
  }
  op.problem = ProblemId{static_cast<std::uint32_t>(rng.index(64))};

  static const std::vector<std::string> names = {
      "ana", "ben", "carla", "d",
      "назар",                      // non-ASCII survives JSON escaping
      "tab\tand\nnewline",          // escapes in strings
      "quote\"backslash\\",
  };
  op.designer = rng.pick(names);

  const std::size_t assigns = rng.index(5);
  for (std::size_t i = 0; i < assigns; ++i) {
    // Values chosen to stress the %.17g canonical form: tiny, huge,
    // negative, non-terminating binary fractions.
    double v = 0.0;
    switch (rng.index(5)) {
      case 0: v = rng.uniform(-1e9, 1e9); break;
      case 1: v = rng.uniform() * 1e-12; break;
      case 2: v = 1.0 / 3.0 * static_cast<double>(rng.range(-7, 7)); break;
      case 3: v = static_cast<double>(rng.range(-1000, 1000)); break;
      default: v = rng.uniform(); break;
    }
    op.assignments.emplace_back(
        constraint::PropertyId{static_cast<std::uint32_t>(rng.index(32))}, v);
  }

  const std::size_t checks = rng.index(4);
  for (std::size_t i = 0; i < checks; ++i) {
    op.checks.push_back(
        constraint::ConstraintId{static_cast<std::uint32_t>(rng.index(32))});
  }

  if (rng.chance(0.5)) {
    op.triggeredBy =
        constraint::ConstraintId{static_cast<std::uint32_t>(rng.index(32))};
  }
  if (rng.chance(0.6)) {
    op.rationale = rng.chance(0.5) ? "alpha=2, repairing budget"
                                   : std::string(rng.index(100), 'r');
  }
  return op;
}

TEST(OperationIoFuzz, EncodeDecodeEncodeIsByteIdentical) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    util::Rng rng(seed);
    for (int i = 0; i < 500; ++i) {
      const Operation op = randomOperation(rng);
      const std::string once = operationToJsonLine(op);
      Operation decoded;
      ASSERT_NO_THROW(decoded = operationFromJsonLine(once))
          << "seed=" << seed << " i=" << i << " line=" << once;
      const std::string twice = operationToJsonLine(decoded);
      ASSERT_EQ(once, twice) << "seed=" << seed << " i=" << i;

      // The decode is also semantically faithful, not merely re-encodable.
      ASSERT_EQ(decoded.kind, op.kind);
      ASSERT_EQ(decoded.designer, op.designer);
      ASSERT_EQ(decoded.assignments.size(), op.assignments.size());
      for (std::size_t a = 0; a < op.assignments.size(); ++a) {
        ASSERT_EQ(decoded.assignments[a].first.value,
                  op.assignments[a].first.value);
        ASSERT_EQ(decoded.assignments[a].second, op.assignments[a].second)
            << "double did not survive the canonical form bit-exactly";
      }
      ASSERT_EQ(decoded.triggeredBy.has_value(), op.triggeredBy.has_value());
      ASSERT_EQ(decoded.rationale, op.rationale);
    }
  }
}

TEST(OperationIoFuzz, TruncatedLinesThrowTypedErrorsNotCrashes) {
  util::Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const std::string line = operationToJsonLine(randomOperation(rng));
    // Every proper prefix is malformed JSON or an incomplete object.
    for (std::size_t len = 0; len < line.size(); ++len) {
      try {
        const Operation op = operationFromJsonLine(line.substr(0, len));
        // A prefix that still decodes (rare; e.g. nothing truncated but
        // whitespace) must re-encode stably.
        EXPECT_EQ(operationToJsonLine(op),
                  operationToJsonLine(operationFromJsonLine(
                      operationToJsonLine(op))));
      } catch (const adpm::Error&) {
        // The contract: typed errors only.
      }
    }
  }
}

TEST(OperationIoFuzz, GarbledBytesThrowTypedErrorsNotCrashes) {
  util::Rng rng(1337);
  std::size_t survived = 0, rejected = 0;
  for (int i = 0; i < 400; ++i) {
    std::string line = operationToJsonLine(randomOperation(rng));
    // Flip 1-3 bytes anywhere in the line.
    const std::size_t flips = 1 + rng.index(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.index(line.size());
      line[pos] = static_cast<char>(rng.index(256));
    }
    try {
      const Operation op = operationFromJsonLine(line);
      // Corruption that happens to still parse must decode to something
      // that re-encodes canonically (the WAL salvage path relies on this).
      EXPECT_EQ(operationToJsonLine(op),
                operationToJsonLine(operationFromJsonLine(
                    operationToJsonLine(op))));
      ++survived;
    } catch (const adpm::Error&) {
      ++rejected;
    }
  }
  // Sanity on the harness itself: random flips must actually be reaching
  // the decoder's error paths.
  EXPECT_GT(rejected, 0u);
  (void)survived;
}

TEST(OperationIoFuzz, StructurallyWrongJsonIsRejected) {
  const std::vector<std::string> bad = {
      "",
      "null",
      "42",
      "[]",
      R"("a string")",
      R"({})",
      R"({"kind":"NoSuchKind","problem":0,"designer":"a"})",
      R"({"kind":"Synthesis","problem":-1,"designer":"a"})",
      R"({"kind":"Synthesis","problem":0.5,"designer":"a"})",
      R"({"kind":"Synthesis","problem":0,"designer":"a","assign":[[1]]})",
      R"({"kind":"Synthesis","problem":0,"designer":"a","assign":[1,2]})",
      R"({"kind":"Synthesis","problem":0,"designer":"a","trigger":"x"})",
      R"({"kind":"Synthesis","problem":0,"designer":7})",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW(operationFromJsonLine(line), adpm::Error) << line;
  }
}

}  // namespace
}  // namespace adpm::dpm
