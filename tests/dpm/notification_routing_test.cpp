// Routing edge cases of the Notification Manager: relevance filtering (only
// designers owning an involved property hear about an event) and the
// unresolvable-owner drop path (events on properties nobody owns are
// discarded, never delivered to the empty designer).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dpm/manager.hpp"
#include "dpm/notification.hpp"
#include "dpm/scenario.hpp"

namespace adpm::dpm {
namespace {

using constraint::ConstraintId;
using constraint::GuidanceReport;
using constraint::PropertyGuidance;
using constraint::PropertyId;
using constraint::Relation;
using constraint::Status;
using interval::Domain;

ScenarioSpec twoTeamScenario() {
  ScenarioSpec s;
  s.name = "two-team";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint(
      {"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addConstraint(
      {"x-floor", s.pvar(x), Relation::Ge, expr::Expr::constant(5.0), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem(
      {"A", "a", "ana", {cap}, {x}, {1}, std::optional<std::size_t>{0}, {}, true});
  s.addProblem(
      {"B", "b", "ben", {cap}, {y}, {}, std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

class NotificationRouting : public ::testing::Test {
 protected:
  NotificationRouting() : dpm_(DesignProcessManager::Options{.adpm = true}) {
    instantiate(twoTeamScenario(), dpm_);
  }
  DesignProcessManager dpm_;
  NotificationManager nm_;
};

TEST_F(NotificationRouting, EmptyAudienceEntriesAreDropped) {
  const std::vector<Status> before{Status::Consistent, Status::Consistent};
  const std::vector<Status> after{Status::Violated, Status::Violated};

  const auto out = nm_.diff(
      1, dpm_.network(), before, after, nullptr, nullptr,
      [](const constraint::Constraint& c) -> std::vector<std::string> {
        // budget: nobody resolvable; x-floor: one resolvable + one empty.
        if (c.name() == "budget") return {};
        return {"ana", ""};
      },
      [](PropertyId) { return std::string(); });

  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].designer, "ana");
  EXPECT_EQ(out[0].kind, NotificationKind::ViolationDetected);
  ASSERT_TRUE(out[0].constraintId.has_value());
  EXPECT_EQ(out[0].constraintId->value, 1u);
  for (const Notification& n : out) EXPECT_FALSE(n.designer.empty());
}

TEST_F(NotificationRouting, SubspaceReductionWithoutOwnerIsDropped) {
  GuidanceReport gBefore;
  GuidanceReport gAfter;
  PropertyGuidance pb;
  pb.id = PropertyId{1};  // x
  pb.feasible = Domain::continuous(0, 100);
  pb.relativeFeasibleSize = 1.0;
  PropertyGuidance pa = pb;
  pa.feasible = Domain::continuous(0, 10);
  pa.relativeFeasibleSize = 0.1;  // well past the reduction threshold
  gBefore.properties.push_back(pb);
  gAfter.properties.push_back(pa);

  const std::vector<Status> same{Status::Consistent, Status::Consistent};
  const auto audience = [](const constraint::Constraint&) {
    return std::vector<std::string>{};
  };

  // Owner unresolvable -> the reduction event vanishes, no empty recipient.
  const auto dropped =
      nm_.diff(1, dpm_.network(), same, same, &gBefore, &gAfter, audience,
               [](PropertyId) { return std::string(); });
  EXPECT_TRUE(dropped.empty());

  // Identical diff with a resolvable owner delivers exactly one event.
  const auto delivered =
      nm_.diff(1, dpm_.network(), same, same, &gBefore, &gAfter, audience,
               [](PropertyId) { return std::string("ana"); });
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].kind, NotificationKind::FeasibleSubspaceReduced);
  EXPECT_EQ(delivered[0].designer, "ana");
  ASSERT_TRUE(delivered[0].propertyId.has_value());
  EXPECT_EQ(delivered[0].propertyId->value, 1u);
}

TEST_F(NotificationRouting, SmallReductionStaysBelowThreshold) {
  GuidanceReport gBefore;
  GuidanceReport gAfter;
  PropertyGuidance pb;
  pb.id = PropertyId{1};
  pb.feasible = Domain::continuous(0, 100);
  pb.relativeFeasibleSize = 1.0;
  PropertyGuidance pa = pb;
  pa.relativeFeasibleSize = 0.99;  // above the default 0.95 threshold
  gBefore.properties.push_back(pb);
  gAfter.properties.push_back(pa);

  const std::vector<Status> same{Status::Consistent, Status::Consistent};
  const auto out = nm_.diff(
      1, dpm_.network(), same, same, &gBefore, &gAfter,
      [](const constraint::Constraint&) { return std::vector<std::string>{}; },
      [](PropertyId) { return std::string("ana"); });
  EXPECT_TRUE(out.empty());
}

TEST_F(NotificationRouting, RelevanceFilteringExcludesUninvolvedDesigner) {
  // ana binds x below the x-floor: the violation involves only x, so only
  // ana (its owner) is notified — ben and lead own no involved property.
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{1};
  op.designer = "ana";
  op.assignments.emplace_back(PropertyId{1}, 2.0);
  const auto result = dpm_.execute(std::move(op));

  std::set<std::string> recipients;
  for (const Notification& n : result.notifications) {
    if (n.kind == NotificationKind::ViolationDetected &&
        n.constraintId.has_value() && n.constraintId->value == 1u) {
      recipients.insert(n.designer);
    }
    EXPECT_FALSE(n.designer.empty());
  }
  EXPECT_EQ(recipients, (std::set<std::string>{"ana"}));
}

}  // namespace
}  // namespace adpm::dpm
