// Configuration of the Notification Manager's reduction threshold.
#include <gtest/gtest.h>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"

namespace adpm::dpm {
namespace {

using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

ScenarioSpec capScenario() {
  ScenarioSpec s;
  s.name = "cap";
  s.addObject("sys");
  s.addObject("a", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  s.addConstraint({"spec", s.pvar(x), Relation::Le, s.pvar(cap), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {}, std::optional<std::size_t>{0},
                {}, true});
  s.require(cap, 90.0);
  return s;
}

Operation tighten(double value) {
  Operation op;
  op.kind = OperatorKind::Synthesis;
  op.problem = ProblemId{0};
  op.designer = "lead";
  op.assignments.emplace_back(PropertyId{0}, value);
  return op;
}

std::size_t reductionsSeen(DesignProcessManager& dpm, double newCap) {
  dpm.bootstrap();
  dpm.execute(tighten(89.0));  // establish baseline guidance diff state
  const auto r = dpm.execute(tighten(newCap));
  std::size_t count = 0;
  for (const auto& n : r.notifications) {
    if (n.kind == NotificationKind::FeasibleSubspaceReduced) ++count;
  }
  return count;
}

TEST(NotificationSizes, DefaultThresholdFiresOnSharpReduction) {
  DesignProcessManager dpm(DesignProcessManager::Options{.adpm = true});
  instantiate(capScenario(), dpm);
  EXPECT_GE(reductionsSeen(dpm, 20.0), 1u);  // x's window shrinks ~78%
}

TEST(NotificationSizes, LooseThresholdIgnoresSmallReduction) {
  DesignProcessManager::Options options;
  options.adpm = true;
  options.nm.reductionThreshold = 0.5;  // only report halvings
  DesignProcessManager dpm(options);
  instantiate(capScenario(), dpm);
  EXPECT_EQ(reductionsSeen(dpm, 85.0), 0u);  // a ~4% shrink stays quiet
}

TEST(NotificationSizes, TightThresholdReportsEverything) {
  DesignProcessManager::Options options;
  options.adpm = true;
  options.nm.reductionThreshold = 0.9999;
  DesignProcessManager dpm(options);
  instantiate(capScenario(), dpm);
  EXPECT_GE(reductionsSeen(dpm, 85.0), 1u);
}

}  // namespace
}  // namespace adpm::dpm
